//! Byte-codec primitives of the service protocol.
//!
//! The varint, delta-row and bounds-checked-reader primitives are the ones
//! extracted from `CompressedCsrGraph`'s LEB128 routines into
//! [`kvcc_graph::codec`]; they are re-exported here so the whole wire layer
//! (and external transport implementations) reach them through one path.
//! On top of them this module adds the two composite encodings the protocol
//! needs: length-prefixed byte strings and UTF-8 text.

pub use kvcc_graph::codec::{decode_row, encode_row, varint, Reader};

/// Appends a length-prefixed byte string (varint length + raw bytes).
pub fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    varint::encode_u32(bytes.len() as u32, out);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string written by [`encode_bytes`].
pub fn decode_bytes<'a>(r: &mut Reader<'a>) -> Option<&'a [u8]> {
    let len = r.varint_u32()? as usize;
    r.take(len)
}

/// Appends a length-prefixed UTF-8 string.
pub fn encode_str(text: &str, out: &mut Vec<u8>) {
    encode_bytes(text.as_bytes(), out);
}

/// Reads a length-prefixed UTF-8 string, rejecting invalid UTF-8.
pub fn decode_string(r: &mut Reader<'_>) -> Option<String> {
    let bytes = decode_bytes(r)?;
    String::from_utf8(bytes.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_bytes_roundtrip() {
        let mut out = Vec::new();
        encode_str("héllo", &mut out);
        encode_bytes(&[1, 2, 3], &mut out);
        let mut r = Reader::new(&out);
        assert_eq!(decode_string(&mut r).as_deref(), Some("héllo"));
        assert_eq!(decode_bytes(&mut r), Some(&[1u8, 2, 3][..]));
        assert!(r.finish().is_some());
        // Truncated and non-UTF-8 payloads are rejected.
        let mut r = Reader::new(&out[..3]);
        assert_eq!(decode_string(&mut r), None);
        let mut bad = Vec::new();
        encode_bytes(&[0xFF, 0xFE], &mut bad);
        assert_eq!(decode_string(&mut Reader::new(&bad)), None);
    }
}
