//! Seeded fault injection: reproducible chaos for the shard fleet.
//!
//! [`FaultTransport`] decorates any [`Transport`] and injects failures per a
//! [`FaultPlan`]: message drops, delivery delays, single-bit corruption,
//! truncation, and hard disconnects — on both the send and the receive
//! path. The injection decisions come from a seeded splitmix64 stream, so a
//! given plan replays the same fault pattern run after run; CI chaos tests
//! (`tests/fleet_parity.rs`) assert that the coordinator produces
//! byte-identical output under every schedule instead of hand-waving at
//! "eventually consistent".
//!
//! The decorator sits *above* the frame layer (it mangles message payloads,
//! not raw stream bytes), which makes each fault a well-formed delivery of a
//! damaged message: corruption is caught by the protocol's envelope
//! checksum, truncation by the decoder's exact-length checks, and neither
//! desynchronises the underlying frame stream. Disconnects, by contrast,
//! kill the decorated endpoint for good — every later operation reports
//! [`TransportError::Closed`], exactly like a peer process dying mid-item.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::wire::transport::{Transport, TransportError};

/// What to inject, with what probability. Rates are per-mille (`0..=1000`)
/// per message, evaluated independently on every send and receive.
///
/// The default plan injects nothing; tests override only the faults under
/// study. Deterministic triggers ([`FaultPlan::fail_first_sends`],
/// [`FaultPlan::disconnect_after_sends`]) exist alongside the random rates
/// so state-machine transitions (quarantine, mid-item worker death) can be
/// forced at an exact point instead of fished for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the splitmix64 decision stream.
    pub seed: u64,
    /// Per-mille chance a message is silently dropped.
    pub drop_per_mille: u32,
    /// Per-mille chance a message is delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u32,
    /// How long a delayed message sleeps before delivery.
    pub delay: Duration,
    /// Per-mille chance one pseudo-random bit of the message is flipped.
    pub corrupt_per_mille: u32,
    /// Per-mille chance the message is truncated to a pseudo-random prefix.
    pub truncate_per_mille: u32,
    /// Per-mille chance the transport disconnects *instead of* delivering;
    /// once tripped the endpoint is dead for good.
    pub disconnect_per_mille: u32,
    /// Deterministically drop this many sends before any get through
    /// (forces a consecutive-failure streak, i.e. quarantine).
    pub fail_first_sends: u32,
    /// Deterministically disconnect after this many successful sends
    /// (forces a worker death at an exact protocol position).
    pub disconnect_after_sends: Option<u32>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5eed_f417,
            drop_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(5),
            corrupt_per_mille: 0,
            truncate_per_mille: 0,
            disconnect_per_mille: 0,
            fail_first_sends: 0,
            disconnect_after_sends: None,
        }
    }
}

/// How many faults of each kind a [`FaultTransport`] actually injected —
/// the ground truth a chaos test checks its assertions against (e.g. "this
/// schedule really dropped something, and parity still held").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Messages silently swallowed.
    pub drops: u64,
    /// Messages delivered late.
    pub delays: u64,
    /// Messages delivered with one bit flipped.
    pub corruptions: u64,
    /// Messages delivered truncated.
    pub truncations: u64,
    /// Hard disconnects (at most 1 per transport).
    pub disconnects: u64,
}

impl FaultStatsSnapshot {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.corruptions + self.truncations + self.disconnects
    }
}

#[derive(Default)]
struct FaultStats {
    drops: AtomicU64,
    delays: AtomicU64,
    corruptions: AtomicU64,
    truncations: AtomicU64,
    disconnects: AtomicU64,
}

/// splitmix64: tiny, seedable, good enough for fault scheduling. Kept
/// in-crate so the service layer needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The damage (if any) chosen for one message.
enum Verdict {
    Deliver(Option<Vec<u8>>),
    Drop,
    Disconnect,
}

/// A [`Transport`] decorator injecting seeded faults; see the module docs.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    rng: Mutex<u64>,
    sends: AtomicU64,
    dead: AtomicBool,
    stats: FaultStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultTransport {
            inner,
            plan,
            rng: Mutex::new(plan.seed),
            sends: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            stats: FaultStats::default(),
        }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            drops: self.stats.drops.load(Ordering::Relaxed),
            delays: self.stats.delays.load(Ordering::Relaxed),
            corruptions: self.stats.corruptions.load(Ordering::Relaxed),
            truncations: self.stats.truncations.load(Ordering::Relaxed),
            disconnects: self.stats.disconnects.load(Ordering::Relaxed),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn disconnect(&self) -> TransportError {
        if !self.dead.swap(true, Ordering::Relaxed) {
            self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        TransportError::Closed
    }

    /// Rolls the plan's dice for one message. Delay (when drawn) is slept
    /// here; the other verdicts are applied by the caller.
    fn judge(&self, message: &[u8]) -> Verdict {
        let mut rng = self.rng.lock().unwrap();
        let roll =
            |state: &mut u64, per_mille: u32| splitmix64(state) % 1000 < u64::from(per_mille);
        if roll(&mut rng, self.plan.disconnect_per_mille) {
            return Verdict::Disconnect;
        }
        if roll(&mut rng, self.plan.drop_per_mille) {
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        let delayed = roll(&mut rng, self.plan.delay_per_mille);
        let mut mangled: Option<Vec<u8>> = None;
        if roll(&mut rng, self.plan.corrupt_per_mille) && !message.is_empty() {
            let bit = splitmix64(&mut rng) as usize % (message.len() * 8);
            let mut copy = message.to_vec();
            copy[bit / 8] ^= 1 << (bit % 8);
            self.stats.corruptions.fetch_add(1, Ordering::Relaxed);
            mangled = Some(copy);
        } else if roll(&mut rng, self.plan.truncate_per_mille) && !message.is_empty() {
            let keep = splitmix64(&mut rng) as usize % message.len();
            self.stats.truncations.fetch_add(1, Ordering::Relaxed);
            mangled = Some(message[..keep].to_vec());
        }
        drop(rng);
        if delayed {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.plan.delay);
        }
        Verdict::Deliver(mangled)
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        let nth = self.sends.fetch_add(1, Ordering::Relaxed);
        if let Some(limit) = self.plan.disconnect_after_sends {
            if nth >= u64::from(limit) {
                return Err(self.disconnect());
            }
        }
        if nth < u64::from(self.plan.fail_first_sends) {
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        match self.judge(frame) {
            Verdict::Drop => Ok(()),
            Verdict::Disconnect => Err(self.disconnect()),
            Verdict::Deliver(Some(mangled)) => self.inner.send(&mangled),
            Verdict::Deliver(None) => self.inner.send(frame),
        }
    }

    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if self.dead.load(Ordering::Relaxed) {
                return Err(TransportError::Closed);
            }
            let Some(frame) = self.inner.recv()? else {
                return Ok(None);
            };
            match self.judge(&frame) {
                Verdict::Drop => continue,
                Verdict::Disconnect => return Err(self.disconnect()),
                Verdict::Deliver(Some(mangled)) => return Ok(Some(mangled)),
                Verdict::Deliver(None) => return Ok(Some(frame)),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.dead.load(Ordering::Relaxed) {
                return Err(TransportError::Closed);
            }
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|r| !r.is_zero())
                .ok_or(TransportError::TimedOut)?;
            let Some(frame) = self.inner.recv_timeout(remaining)? else {
                return Ok(None);
            };
            match self.judge(&frame) {
                Verdict::Drop => continue,
                Verdict::Disconnect => return Err(self.disconnect()),
                Verdict::Deliver(Some(mangled)) => return Ok(Some(mangled)),
                Verdict::Deliver(None) => return Ok(Some(frame)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::transport::LoopbackTransport;

    #[test]
    fn a_zero_plan_is_a_transparent_wrapper() {
        let (a, b) = LoopbackTransport::pair();
        let chaotic = FaultTransport::new(a, FaultPlan::default());
        chaotic.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"hello");
        b.send(b"world").unwrap();
        assert_eq!(chaotic.recv().unwrap().unwrap(), b"world");
        assert_eq!(chaotic.stats(), FaultStatsSnapshot::default());
    }

    #[test]
    fn the_same_seed_replays_the_same_fault_schedule() {
        let run = |seed: u64| -> (Vec<Option<Vec<u8>>>, FaultStatsSnapshot) {
            let (a, b) = LoopbackTransport::pair();
            let chaotic = FaultTransport::new(
                a,
                FaultPlan {
                    seed,
                    drop_per_mille: 300,
                    corrupt_per_mille: 200,
                    truncate_per_mille: 200,
                    ..FaultPlan::default()
                },
            );
            let mut seen = Vec::new();
            for i in 0..40u8 {
                chaotic.send(&[i; 16]).unwrap();
                seen.push(b.recv_timeout(Duration::from_millis(5)).ok().flatten());
            }
            (seen, chaotic.stats())
        };
        let (first, first_stats) = run(42);
        let (again, again_stats) = run(42);
        assert_eq!(first, again, "same seed, same damage");
        assert_eq!(first_stats, again_stats);
        assert!(first_stats.total() > 0, "this schedule injects faults");
        let (other, _) = run(43);
        assert_ne!(first, other, "a different seed reschedules the chaos");
    }

    #[test]
    fn fail_first_sends_swallows_exactly_that_many() {
        let (a, b) = LoopbackTransport::pair();
        let chaotic = FaultTransport::new(
            a,
            FaultPlan {
                fail_first_sends: 3,
                ..FaultPlan::default()
            },
        );
        for i in 0..5u8 {
            chaotic.send(&[i]).unwrap();
        }
        assert_eq!(b.recv().unwrap().unwrap(), [3]);
        assert_eq!(b.recv().unwrap().unwrap(), [4]);
        assert_eq!(chaotic.stats().drops, 3);
    }

    #[test]
    fn disconnect_after_sends_kills_the_endpoint_for_good() {
        let (a, _b) = LoopbackTransport::pair();
        let chaotic = FaultTransport::new(
            a,
            FaultPlan {
                disconnect_after_sends: Some(2),
                ..FaultPlan::default()
            },
        );
        chaotic.send(b"one").unwrap();
        chaotic.send(b"two").unwrap();
        assert_eq!(chaotic.send(b"three"), Err(TransportError::Closed));
        assert_eq!(chaotic.recv(), Err(TransportError::Closed));
        assert_eq!(
            chaotic.recv_timeout(Duration::from_millis(1)),
            Err(TransportError::Closed)
        );
        assert_eq!(chaotic.stats().disconnects, 1);
    }
}
