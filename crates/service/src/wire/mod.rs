//! The byte layer of the service: codecs, frames, transports, work items.
//!
//! Everything that crosses a process boundary lives under this module:
//!
//! * [`codec`] — the shared varint/delta primitives (re-exported from
//!   [`kvcc_graph::codec`], where they were extracted from the compressed
//!   CSR graph) plus the string/bytes helpers the protocol needs;
//! * [`message`] — the protocol-v2 byte codec: [`crate::Request`] /
//!   [`crate::Response`] `to_bytes`/`from_bytes` with version tag and full
//!   validation;
//! * [`frame`] — the length-prefixed frame format every transport speaks;
//! * [`transport`] — the [`Transport`](transport::Transport) trait, the
//!   in-process loopback implementation, and the byte-driven shard worker;
//! * [`socket`] — the same trait over real TCP and Unix sockets, plus the
//!   [`ShardPool`](socket::ShardPool) accept loop behind `kvcc-shardd`;
//! * [`faults`] — the seeded fault-injection decorator
//!   ([`FaultTransport`](faults::FaultTransport)) for reproducible chaos
//!   testing of the shard coordinator;
//! * [`CsrWorkItem`] — the self-contained unit of sharded enumeration (a
//!   compact CSR subgraph plus the mapping of its local ids back to the
//!   input graph).
//!
//! All formats are hand-rolled (no serialisation crate in the offline
//! build) and validated on ingest, so hostile bytes are rejected with an
//! error instead of panicking or producing incoherent structures.

pub mod codec;
pub mod faults;
pub mod frame;
pub mod message;
pub mod socket;
pub mod transport;

use kvcc::{enumerate_kvccs, KVertexConnectedComponent, KvccError, KvccOptions};
use kvcc_graph::{CsrGraph, GraphError, VertexId};

/// Magic bytes opening every serialised work item.
const ITEM_WIRE_MAGIC: [u8; 4] = *b"KWRK";
/// Version byte of the work-item wire format. Version 2 switched the
/// embedded graph to the compact CSR encoding and the id map to varints
/// (the shared [`kvcc_graph::codec`] primitives).
const ITEM_WIRE_VERSION: u8 = 2;

/// One unit of sharded enumeration: a subgraph in its own compact id space
/// plus the mapping back to the ids of the input graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrWorkItem {
    graph: CsrGraph,
    to_original: Vec<VertexId>,
}

impl CsrWorkItem {
    /// Creates a work item; `to_original` must have one entry per vertex of
    /// `graph`.
    pub fn new(graph: CsrGraph, to_original: Vec<VertexId>) -> Self {
        assert_eq!(
            graph.num_vertices(),
            to_original.len(),
            "id map must cover every vertex of the work item"
        );
        CsrWorkItem { graph, to_original }
    }

    /// The subgraph, in local ids `0..n`.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// `to_original[local]` is the vertex id in the input graph.
    pub fn to_original(&self) -> &[VertexId] {
        &self.to_original
    }

    /// Serialises the item: magic, version, then the compact CSR buffer
    /// ([`CsrGraph::to_bytes_compact`]) behind a varint length, and the id
    /// map as one varint per entry (the map count is the graph's vertex
    /// count, so it is not repeated on the wire).
    pub fn to_bytes(&self) -> Vec<u8> {
        use kvcc_graph::codec::varint;
        let graph_bytes = self.graph.to_bytes_compact();
        let mut out =
            Vec::with_capacity(4 + 1 + 5 + graph_bytes.len() + 5 * self.to_original.len());
        out.extend_from_slice(&ITEM_WIRE_MAGIC);
        out.push(ITEM_WIRE_VERSION);
        varint::encode_u32(graph_bytes.len() as u32, &mut out);
        out.extend_from_slice(&graph_bytes);
        for &v in &self.to_original {
            varint::encode_u32(v, &mut out);
        }
        out
    }

    /// Deserialises a buffer produced by [`CsrWorkItem::to_bytes`],
    /// re-validating every structural invariant of the embedded graph.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        use kvcc_graph::codec::Reader;
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        if bytes.len() < 5 {
            return Err(malformed("work-item buffer shorter than the header"));
        }
        if bytes[..4] != ITEM_WIRE_MAGIC {
            return Err(malformed("bad magic (not a work-item buffer)"));
        }
        if bytes[4] != ITEM_WIRE_VERSION {
            return Err(malformed("unsupported work-item version"));
        }
        let mut r = Reader::new(&bytes[5..]);
        let graph_len = r
            .varint_u32()
            .ok_or_else(|| malformed("graph length truncated"))? as usize;
        let graph_bytes = r
            .take(graph_len)
            .ok_or_else(|| malformed("work-item buffer truncated before the id map"))?;
        let graph = CsrGraph::from_bytes(graph_bytes)?;
        let mut to_original = Vec::with_capacity(graph.num_vertices().min(r.remaining()));
        for _ in 0..graph.num_vertices() {
            to_original.push(
                r.varint_u32()
                    .ok_or_else(|| malformed("id map must cover every vertex"))?,
            );
        }
        r.finish()
            .ok_or_else(|| malformed("id map length disagrees with the buffer"))?;
        Ok(CsrWorkItem { graph, to_original })
    }
}

/// Runs the enumeration on one (possibly deserialised) work item and maps the
/// resulting components back to **original** graph ids — the shard side of a
/// distributed `KVCC-ENUM`. The union of the results over the items produced
/// by [`crate::ServiceEngine::partition_work`] equals a whole-graph
/// enumeration.
pub fn run_work_item(
    item: &CsrWorkItem,
    k: u32,
    options: &KvccOptions,
) -> Result<Vec<KVertexConnectedComponent>, KvccError> {
    let result = enumerate_kvccs(item.graph(), k, options)?;
    let mut mapped: Vec<KVertexConnectedComponent> = result
        .iter()
        .map(|c| {
            let original: Vec<VertexId> = c
                .vertices()
                .iter()
                .map(|&local| item.to_original()[local as usize])
                .collect();
            KVertexConnectedComponent::new(original)
        })
        .collect();
    mapped.sort();
    Ok(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> CsrWorkItem {
        let graph =
            CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14])
    }

    #[test]
    fn byte_roundtrip_preserves_the_item() {
        let original = item();
        let bytes = original.to_bytes();
        let back = CsrWorkItem::from_bytes(&bytes).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let good = item().to_bytes();
        assert!(CsrWorkItem::from_bytes(&good[..5]).is_err());
        assert!(CsrWorkItem::from_bytes(&good[..good.len() - 4]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        assert!(CsrWorkItem::from_bytes(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(CsrWorkItem::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn running_a_deserialised_item_reports_original_ids() {
        let bytes = item().to_bytes();
        let shipped = CsrWorkItem::from_bytes(&bytes).unwrap();
        let comps = run_work_item(&shipped, 2, &KvccOptions::default()).unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].vertices(), &[10, 11, 12]);
        assert_eq!(comps[1].vertices(), &[12, 13, 14]);
    }

    #[test]
    #[should_panic(expected = "id map must cover")]
    fn mismatched_map_is_rejected_at_construction() {
        let graph = CsrGraph::from_edges(3, vec![(0, 1)]).unwrap();
        let _ = CsrWorkItem::new(graph, vec![0, 1]);
    }
}
