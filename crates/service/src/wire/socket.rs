//! Real socket transports and the multi-process shard worker pool.
//!
//! [`TcpTransport`] and [`UnixTransport`] put the shared frame format
//! ([`crate::wire::frame`]) on actual OS sockets, implementing the same
//! [`Transport`] trait the in-process loopback does — so the coordinator,
//! the chaos decorator and the parity tests run unchanged over a network.
//! Both are thin instantiations of one generic [`StreamTransport`]: a
//! reader half (stream clone + [`FrameDecoder`]) and a writer half, each
//! behind its own mutex so sends and receives never block each other.
//!
//! [`ShardPool`] is the serving side: it accepts connections on a listener
//! and runs [`run_shard_worker`] on a thread per connection — the
//! in-process stand-in for the `kvcc-shardd` daemon (which is exactly this
//! type behind a CLI), and what integration tests spawn to get a real
//! multi-socket fleet without leaving the test process.
//!
//! Timeouts ([`SocketOptions`]) are mapped onto [`TransportError`]s so the
//! retry classification stays uniform: `WouldBlock`/`TimedOut` I/O errors
//! become the retryable [`TransportError::TimedOut`], everything else —
//! reset, refused, broken pipe — becomes the fatal
//! [`TransportError::Closed`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvcc::KvccOptions;

use crate::protocol::{QueryResponse, Request, RequestBody, Response, ResponseBody, ServiceError};
use crate::wire::frame::{encode_frame, FrameDecoder};
use crate::wire::transport::{run_shard_worker, Transport, TransportError};

/// Socket behaviour knobs shared by the TCP and Unix transports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocketOptions {
    /// Deadline for establishing a TCP connection (Unix sockets connect
    /// locally and ignore it).
    pub connect_timeout: Duration,
    /// Per-read deadline applied to plain [`Transport::recv`] calls; `None`
    /// blocks until the peer sends or closes.
    /// ([`Transport::recv_timeout`] always uses its own bound.)
    pub read_timeout: Option<Duration>,
    /// Deadline for pushing a frame into the send buffer; a peer that
    /// stops draining its socket surfaces as a retryable timeout instead
    /// of a forever-blocked sender.
    pub write_timeout: Option<Duration>,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

fn map_io(e: &io::Error) -> TransportError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::TimedOut,
        _ => TransportError::Closed,
    }
}

/// The stream operations [`StreamTransport`] needs, implemented by both
/// socket families. (Not public: the public surface is the two aliases.)
pub trait SocketStream: Read + Write + Send + Sized {
    /// Clones the handle so reads and writes get independent halves.
    fn duplicate(&self) -> io::Result<Self>;
    /// Sets the per-read deadline (`None` blocks).
    fn set_read_deadline(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Sets the per-write deadline (`None` blocks).
    fn set_write_deadline(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl SocketStream for TcpStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_write_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

impl SocketStream for UnixStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_write_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

/// Reader half: the stream clone plus frame reassembly state.
struct ReadHalf<S> {
    stream: S,
    decoder: FrameDecoder,
    /// The peer has closed; drain buffered frames, then report `None`.
    eof: bool,
    /// The read timeout currently armed on the socket, to skip redundant
    /// setsockopt calls on the hot path.
    armed: Option<Option<Duration>>,
}

/// A [`Transport`] over any [`SocketStream`]; see the module docs.
pub struct StreamTransport<S: SocketStream> {
    reader: Mutex<ReadHalf<S>>,
    writer: Mutex<S>,
    options: SocketOptions,
}

impl<S: SocketStream> StreamTransport<S> {
    /// Wraps a connected stream.
    pub fn from_stream(stream: S, options: SocketOptions) -> io::Result<Self> {
        let reader = stream.duplicate()?;
        stream.set_write_deadline(options.write_timeout)?;
        Ok(StreamTransport {
            reader: Mutex::new(ReadHalf {
                stream: reader,
                decoder: FrameDecoder::new(),
                eof: false,
                armed: None,
            }),
            writer: Mutex::new(stream),
            options,
        })
    }

    fn recv_inner(&self, deadline: Option<Instant>) -> Result<Option<Vec<u8>>, TransportError> {
        let mut half = self.reader.lock().unwrap();
        let mut chunk = [0u8; 8192];
        loop {
            match half.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Err(poison) => return Err(TransportError::Malformed(poison.to_string())),
                Ok(None) => {}
            }
            if half.eof {
                return Ok(None);
            }
            let per_read = match deadline {
                Some(deadline) => {
                    let Some(remaining) = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|r| !r.is_zero())
                    else {
                        return Err(TransportError::TimedOut);
                    };
                    // set_read_timeout(Some(0)) is an error in std; clamp up.
                    Some(remaining.max(Duration::from_millis(1)))
                }
                None => self.options.read_timeout,
            };
            if half.armed != Some(per_read) {
                half.stream
                    .set_read_deadline(per_read)
                    .map_err(|e| map_io(&e))?;
                half.armed = Some(per_read);
            }
            match half.stream.read(&mut chunk) {
                Ok(0) => half.eof = true,
                Ok(n) => half.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(map_io(&e)),
            }
        }
    }
}

impl<S: SocketStream> Transport for StreamTransport<S> {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(frame).map_err(|e| TransportError::Malformed(e.to_string()))?;
        let mut stream = self.writer.lock().unwrap();
        stream.write_all(&framed).map_err(|e| map_io(&e))?;
        stream.flush().map_err(|e| map_io(&e))
    }

    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        self.recv_inner(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.recv_inner(Some(Instant::now() + timeout))
    }
}

/// The frame transport over TCP.
pub type TcpTransport = StreamTransport<TcpStream>;

/// The frame transport over Unix domain sockets — same wire format, no IP
/// stack, for co-located worker processes.
pub type UnixTransport = StreamTransport<UnixStream>;

impl TcpTransport {
    /// Connects to a shard worker with the configured connect timeout and
    /// `TCP_NODELAY` (frames are small; latency beats batching here).
    pub fn connect(addr: impl ToSocketAddrs, options: SocketOptions) -> io::Result<TcpTransport> {
        let mut last = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, options.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return TcpTransport::from_stream(stream, options);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }
}

impl UnixTransport {
    /// Connects to a shard worker's Unix socket.
    pub fn connect(path: impl AsRef<std::path::Path>, options: SocketOptions) -> io::Result<Self> {
        UnixTransport::from_stream(UnixStream::connect(path)?, options)
    }
}

/// Where a [`ShardPool`] listens, kept so shutdown can self-connect to
/// unblock the accept loop.
enum PoolAddr {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

/// A serving worker pool: accepts connections and runs [`run_shard_worker`]
/// on a thread per connection, up to a connection cap. This is the
/// in-process form of the `kvcc-shardd` daemon.
pub struct ShardPool {
    addr: PoolAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

/// Enforces the shared-secret handshake on a fresh connection of a
/// `--token`-armed pool. The first frame must be a decodable
/// [`RequestBody::Handshake`] carrying the matching token; anything else —
/// wrong token, a different request kind, undecodable bytes — is answered
/// with a clean [`ServiceError::Unauthorized`] frame (never a silent drop or
/// a protocol desync) and the connection is closed. Returns whether the
/// worker loop may start.
fn gate_connection(transport: &dyn Transport, token: &str) -> bool {
    let Ok(Some(frame)) = transport.recv() else {
        return false;
    };
    let (request_id, verdict) = match Request::from_bytes(&frame) {
        Ok(request) => match &request.body {
            RequestBody::Handshake { token: offered } => (request.request_id, offered == token),
            _ => (request.request_id, false),
        },
        Err(_) => (0, false),
    };
    let body = if verdict {
        QueryResponse::HandshakeOk
    } else {
        QueryResponse::Error(ServiceError::Unauthorized)
    };
    let response = Response {
        request_id,
        body: ResponseBody::Query(body),
    };
    transport.send(&response.to_bytes()).is_ok() && verdict
}

/// Accept-loop body shared by both socket families. `accept` yields
/// transports until the listener errors or the shutdown flag is seen.
fn accept_loop<T: Transport + 'static>(
    shutdown: &AtomicBool,
    served: &Arc<AtomicU64>,
    active: &Arc<AtomicUsize>,
    max_connections: usize,
    options: &KvccOptions,
    token: Option<&str>,
    mut accept: impl FnMut() -> io::Result<T>,
) {
    loop {
        let Ok(transport) = accept() else {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            // A persistent accept error (e.g. EMFILE) must not spin hot;
            // back off briefly before retrying.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Reserve the slot atomically (increment, then undo when over the
        // cap) so concurrent accept loops can never admit past the cap.
        if active.fetch_add(1, Ordering::Relaxed) >= max_connections {
            active.fetch_sub(1, Ordering::Relaxed);
            continue; // over the cap: drop the connection (peer sees Closed)
        }
        let served = Arc::clone(served);
        let active = Arc::clone(active);
        let options = options.clone();
        let token = token.map(str::to_string);
        std::thread::spawn(move || {
            let authorized = match &token {
                Some(token) => gate_connection(&transport, token),
                None => true,
            };
            if authorized {
                if let Ok(count) = run_shard_worker(&transport, &options) {
                    served.fetch_add(count as u64, Ordering::Relaxed);
                }
            }
            active.fetch_sub(1, Ordering::Relaxed);
        });
    }
}

impl ShardPool {
    /// Serves shard workers on a bound TCP listener with no auth gate.
    pub fn serve_tcp(
        listener: TcpListener,
        socket_options: SocketOptions,
        worker_options: KvccOptions,
        max_connections: usize,
    ) -> io::Result<ShardPool> {
        ShardPool::serve_tcp_with_token(
            listener,
            socket_options,
            worker_options,
            max_connections,
            None,
        )
    }

    /// [`ShardPool::serve_tcp`] with an optional shared-secret auth token:
    /// when `Some`, every connection must open with a matching
    /// [`RequestBody::Handshake`] frame before any work item is served;
    /// mismatches are answered [`ServiceError::Unauthorized`] and the
    /// connection is closed. This is the in-process form of
    /// `kvcc-shardd --token`. See
    /// [`crate::wire::transport::authenticate`] for the client side.
    pub fn serve_tcp_with_token(
        listener: TcpListener,
        socket_options: SocketOptions,
        worker_options: KvccOptions,
        max_connections: usize,
        token: Option<String>,
    ) -> io::Result<ShardPool> {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&served);
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                accept_loop(
                    &shutdown,
                    &served,
                    &active,
                    max_connections,
                    &worker_options,
                    token.as_deref(),
                    || {
                        let (stream, _) = listener.accept()?;
                        stream.set_nodelay(true)?;
                        TcpTransport::from_stream(stream, socket_options)
                    },
                );
            })
        };
        Ok(ShardPool {
            addr: PoolAddr::Tcp(addr),
            shutdown,
            accept_thread: Some(accept_thread),
            served,
        })
    }

    /// Serves shard workers on a bound Unix-socket listener with no auth
    /// gate.
    pub fn serve_unix(
        listener: UnixListener,
        socket_options: SocketOptions,
        worker_options: KvccOptions,
        max_connections: usize,
    ) -> io::Result<ShardPool> {
        ShardPool::serve_unix_with_token(
            listener,
            socket_options,
            worker_options,
            max_connections,
            None,
        )
    }

    /// [`ShardPool::serve_unix`] with an optional shared-secret auth token;
    /// same contract as [`ShardPool::serve_tcp_with_token`].
    pub fn serve_unix_with_token(
        listener: UnixListener,
        socket_options: SocketOptions,
        worker_options: KvccOptions,
        max_connections: usize,
        token: Option<String>,
    ) -> io::Result<ShardPool> {
        let path = listener
            .local_addr()?
            .as_pathname()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "shard pools need a pathname-bound unix listener",
                )
            })?
            .to_path_buf();
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&served);
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                accept_loop(
                    &shutdown,
                    &served,
                    &active,
                    max_connections,
                    &worker_options,
                    token.as_deref(),
                    || UnixTransport::from_stream(listener.accept()?.0, socket_options),
                );
            })
        };
        Ok(ShardPool {
            addr: PoolAddr::Unix(path),
            shutdown,
            accept_thread: Some(accept_thread),
            served,
        })
    }

    /// The TCP address the pool accepts on (`None` for Unix-socket pools).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.addr {
            PoolAddr::Tcp(addr) => Some(*addr),
            PoolAddr::Unix(_) => None,
        }
    }

    /// Total work items served across all connections so far.
    pub fn items_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served run until their peers hang up.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        match &self.addr {
            PoolAddr::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
            }
            PoolAddr::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{QueryResponse, Request, RequestBody, Response, ResponseBody};
    use crate::wire::transport::call;
    use crate::wire::CsrWorkItem;
    use kvcc_graph::CsrGraph;

    fn work_item() -> CsrWorkItem {
        let graph =
            CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14])
    }

    fn expect_components(response: &Response) -> usize {
        match &response.body {
            ResponseBody::Query(QueryResponse::Components(c)) => c.len(),
            other => panic!("expected components, got {other:?}"),
        }
    }

    #[test]
    fn tcp_round_trip_through_a_shard_pool() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ShardPool::serve_tcp(
            listener,
            SocketOptions::default(),
            KvccOptions::default(),
            4,
        )
        .unwrap();
        let addr = pool.local_addr().unwrap();
        let transport = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
        let response = call(
            &transport,
            &Request {
                request_id: 9,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem {
                    k: 2,
                    item: work_item(),
                },
            },
        )
        .unwrap();
        assert_eq!(response.request_id, 9);
        assert_eq!(expect_components(&response), 2);
        drop(transport);
    }

    #[test]
    fn unix_round_trip_through_a_shard_pool() {
        let dir = std::env::temp_dir().join(format!("kvcc-shardd-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let pool = ShardPool::serve_unix(
            listener,
            SocketOptions::default(),
            KvccOptions::default(),
            4,
        )
        .unwrap();
        let transport = UnixTransport::connect(&path, SocketOptions::default()).unwrap();
        let response = call(
            &transport,
            &Request {
                request_id: 3,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem {
                    k: 2,
                    item: work_item(),
                },
            },
        )
        .unwrap();
        assert_eq!(expect_components(&response), 2);
        drop(transport);
        drop(pool);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn token_armed_pool_rejects_mismatches_and_serves_after_handshake() {
        use crate::wire::transport::{authenticate, call_with, CallOptions};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ShardPool::serve_tcp_with_token(
            listener,
            SocketOptions::default(),
            KvccOptions::default(),
            4,
            Some("hunter2".into()),
        )
        .unwrap();
        let addr = pool.local_addr().unwrap();

        // Wrong token: a clean, decodable Unauthorized — not a desync.
        let bad = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
        assert_eq!(authenticate(&bad, "wrong"), Err(ServiceError::Unauthorized));

        // Skipping the handshake entirely is rejected the same way, with
        // the offending request's id echoed.
        let sneaky = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
        let rejected = call_with(
            &sneaky,
            &Request {
                request_id: 8,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem {
                    k: 2,
                    item: work_item(),
                },
            },
            &CallOptions {
                max_attempts: 1,
                ..CallOptions::default()
            },
        )
        .unwrap();
        assert_eq!(rejected.request_id, 8);
        match rejected.body {
            ResponseBody::Query(QueryResponse::Error(ServiceError::Unauthorized)) => {}
            other => panic!("expected unauthorized, got {other:?}"),
        }

        // The right token opens the connection for real work.
        let good = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
        authenticate(&good, "hunter2").unwrap();
        let response = call(
            &good,
            &Request {
                request_id: 2,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem {
                    k: 2,
                    item: work_item(),
                },
            },
        )
        .unwrap();
        assert_eq!(expect_components(&response), 2);
    }

    #[test]
    fn recv_timeout_fires_on_a_silent_tcp_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept but never answer.
        let silent = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let transport = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
        let _held = silent.join().unwrap().unwrap();
        assert_eq!(
            transport.recv_timeout(Duration::from_millis(25)),
            Err(TransportError::TimedOut)
        );
        // Retryable by classification — the connection is still fine.
        assert!(TransportError::TimedOut.is_retryable());
    }

    #[test]
    fn refused_connection_is_an_error_not_a_hang() {
        // Bind-then-drop leaves a port nothing listens on.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        assert!(TcpTransport::connect(addr, SocketOptions::default()).is_err());
    }
}
