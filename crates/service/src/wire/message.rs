//! The protocol-v2 byte codec: [`Request`] / [`Response`] ⇄ bytes.
//!
//! Every message starts with the magic `b"KRPC"`, the protocol version byte
//! (2) and a kind byte (request / response), followed by the envelope fields
//! and a tagged body. Integers are varints, id lists are delta rows, strings
//! are length-prefixed UTF-8 — all built on [`crate::wire::codec`]. Decoding
//! validates as it goes (bounds-checked reads, tag whitelists, exact-length
//! consumption), so truncated, trailing-garbage or hostile buffers are
//! rejected with [`GraphError::MalformedBytes`] and can never panic; the
//! randomized `wire_parity` fuzz suite holds the codec to that.

use kvcc::index::RankBy;
use kvcc::KVertexConnectedComponent;
use kvcc_graph::{EdgeUpdate, GraphError, UpdateOp};

use crate::protocol::{
    GraphId, LoadFormat, OrderingPolicy, QosStats, QueryRequest, QueryResponse, RankedEntry,
    Request, RequestBody, Response, ResponseBody, SchedulingStats, ServiceError,
};
use crate::wire::codec::{
    decode_bytes, decode_string, encode_bytes, encode_row, encode_str, varint, Reader,
};
use crate::wire::CsrWorkItem;

/// Magic bytes opening every protocol message.
const MESSAGE_MAGIC: [u8; 4] = *b"KRPC";
/// Protocol version carried by every message. Version 3 extended the v2
/// vocabulary with the scheduling-telemetry block in the `Stats` response
/// body. Version 4 is the distributed-resilience revision: every message
/// now ends with a 4-byte FNV-1a integrity checksum of the preceding bytes
/// (see [`message_checksum`]), and the `Stats` scheduling block grows the
/// fleet counters (retries / requeues / quarantines / reinstatements /
/// local fallbacks). The checksum is what makes in-flight corruption —
/// the chaos harness's bit-flips and truncations, or a flaky real link —
/// *detectable*: without it, a flipped bit inside a varint can decode as a
/// different valid message and silently change answers; with it, the
/// receiver rejects the message as malformed and the sender retries. Each
/// bump makes the change honest on the wire — an old peer rejects new
/// frames with "unsupported protocol version" instead of misparsing the
/// longer bodies (and vice versa). Version 5 is the mutable-graph revision:
/// the `ApplyUpdates` request body, the `Updated` response body, and the
/// `Stats` block's epoch + update counters. Version 6 is the QoS revision:
/// the `Stats` block grows the slot's `compactions` counter and the
/// engine-wide cache/coalesce/shed/queue-depth block ([`QosStats`]), errors
/// gain the `Overloaded` (10) and `Unauthorized` (11) codes, and the
/// `Handshake` request / `HandshakeOk` response carry the `kvcc-shardd`
/// shared-secret token.
pub const PROTOCOL_VERSION: u8 = 6;
/// Kind byte of a request message.
const KIND_REQUEST: u8 = 0;
/// Kind byte of a response message.
const KIND_RESPONSE: u8 = 1;
/// Bytes of the trailing integrity checksum.
const CHECKSUM_BYTES: usize = 4;

fn malformed(reason: &'static str) -> GraphError {
    GraphError::MalformedBytes { reason }
}

/// FNV-1a (32-bit) over the message bytes — the protocol-v4 integrity
/// trailer. Not cryptographic: it defends against *accidental* in-flight
/// corruption (bit rot, chaos-injected flips and truncations), which is all
/// the retry machinery needs; authenticity is out of scope for this wire.
pub fn message_checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn encode_header(kind: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MESSAGE_MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
}

/// Appends the integrity trailer; the final step of every `to_bytes`.
fn seal(mut out: Vec<u8>) -> Vec<u8> {
    let checksum = message_checksum(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verifies and strips the integrity trailer; the first step of every
/// `from_bytes`. Runs *before* structural decoding so corrupted buffers are
/// reported as corruption (retryable for the peer that sent valid bytes)
/// rather than as a protocol violation.
fn verify_checksum(bytes: &[u8]) -> Result<&[u8], GraphError> {
    // Peek magic + version before the integrity check: a peer speaking a
    // different protocol version checksums differently (or not at all), so
    // its well-formed messages must be rejected as "unsupported protocol
    // version" — the cross-version honesty [`PROTOCOL_VERSION`] promises —
    // not misreported as in-flight corruption.
    if bytes.len() > 4 && bytes[..4] == MESSAGE_MAGIC && bytes[4] != PROTOCOL_VERSION {
        return Err(malformed("unsupported protocol version"));
    }
    if bytes.len() < CHECKSUM_BYTES {
        return Err(malformed("message shorter than its integrity checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - CHECKSUM_BYTES);
    let claimed = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    if message_checksum(body) != claimed {
        return Err(malformed(
            "message integrity checksum mismatch (bytes corrupted in flight)",
        ));
    }
    Ok(body)
}

fn decode_header<'a>(bytes: &'a [u8], kind: u8) -> Result<Reader<'a>, GraphError> {
    let mut r = Reader::new(bytes);
    if r.take(4).map(|m| m != MESSAGE_MAGIC).unwrap_or(true) {
        return Err(malformed("bad magic (not a protocol message)"));
    }
    if r.u8() != Some(PROTOCOL_VERSION) {
        return Err(malformed("unsupported protocol version"));
    }
    if r.u8() != Some(kind) {
        return Err(malformed("wrong message kind"));
    }
    Ok(r)
}

fn encode_option_u32(value: Option<u32>, out: &mut Vec<u8>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            varint::encode_u32(v, out);
        }
    }
}

fn decode_option_u32(r: &mut Reader<'_>) -> Option<Option<u32>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(r.varint_u32()?)),
        _ => None,
    }
}

fn encode_component(component: &KVertexConnectedComponent, out: &mut Vec<u8>) {
    let members = component.vertices();
    varint::encode_u32(members.len() as u32, out);
    encode_row(members, out);
}

fn decode_component(r: &mut Reader<'_>) -> Option<KVertexConnectedComponent> {
    let count = r.varint_u32()? as usize;
    // `Reader::row` caps the allocation by the remaining bytes and yields a
    // strictly increasing list, which is exactly the component invariant.
    Some(KVertexConnectedComponent::new(r.row(count)?))
}

fn encode_components(components: &[KVertexConnectedComponent], out: &mut Vec<u8>) {
    varint::encode_u32(components.len() as u32, out);
    for c in components {
        encode_component(c, out);
    }
}

fn decode_components(r: &mut Reader<'_>) -> Option<Vec<KVertexConnectedComponent>> {
    let count = r.varint_u32()? as usize;
    if count > r.remaining() {
        return None; // each component costs at least one byte
    }
    let mut components = Vec::with_capacity(count);
    for _ in 0..count {
        components.push(decode_component(r)?);
    }
    Some(components)
}

/// Encodes one query body (no envelope). `pub(crate)` because the QoS
/// layer's result-cache key embeds exactly these bytes — keying on the wire
/// form guarantees two requests collide iff they decode identically.
pub(crate) fn encode_query(query: &QueryRequest, out: &mut Vec<u8>) {
    match *query {
        QueryRequest::EnumerateKvccs { graph, k } => {
            out.push(0);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(k, out);
        }
        QueryRequest::KvccsContaining { graph, seed, k } => {
            out.push(1);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(seed, out);
            varint::encode_u32(k, out);
        }
        QueryRequest::MaxConnectivity { graph, u, v } => {
            out.push(2);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(u, out);
            varint::encode_u32(v, out);
        }
        QueryRequest::VertexConnectivityNumber { graph, v } => {
            out.push(3);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(v, out);
        }
        QueryRequest::GlobalCutProbe { graph, k } => {
            out.push(4);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(k, out);
        }
        QueryRequest::LocalConnectivity { graph, u, v, limit } => {
            out.push(5);
            varint::encode_u32(graph.0, out);
            varint::encode_u32(u, out);
            varint::encode_u32(v, out);
            varint::encode_u32(limit, out);
        }
        QueryRequest::GraphStats { graph } => {
            out.push(6);
            varint::encode_u32(graph.0, out);
        }
        QueryRequest::TopKComponents {
            graph,
            rank_by,
            page_size,
            ref cursor,
        } => {
            out.push(7);
            varint::encode_u32(graph.0, out);
            out.push(rank_by.code());
            varint::encode_u32(page_size, out);
            match cursor {
                None => out.push(0),
                Some(bytes) => {
                    out.push(1);
                    encode_bytes(bytes, out);
                }
            }
        }
    }
}

fn decode_query(r: &mut Reader<'_>) -> Option<QueryRequest> {
    let tag = r.u8()?;
    let query = match tag {
        0 => QueryRequest::EnumerateKvccs {
            graph: GraphId(r.varint_u32()?),
            k: r.varint_u32()?,
        },
        1 => QueryRequest::KvccsContaining {
            graph: GraphId(r.varint_u32()?),
            seed: r.varint_u32()?,
            k: r.varint_u32()?,
        },
        2 => QueryRequest::MaxConnectivity {
            graph: GraphId(r.varint_u32()?),
            u: r.varint_u32()?,
            v: r.varint_u32()?,
        },
        3 => QueryRequest::VertexConnectivityNumber {
            graph: GraphId(r.varint_u32()?),
            v: r.varint_u32()?,
        },
        4 => QueryRequest::GlobalCutProbe {
            graph: GraphId(r.varint_u32()?),
            k: r.varint_u32()?,
        },
        5 => QueryRequest::LocalConnectivity {
            graph: GraphId(r.varint_u32()?),
            u: r.varint_u32()?,
            v: r.varint_u32()?,
            limit: r.varint_u32()?,
        },
        6 => QueryRequest::GraphStats {
            graph: GraphId(r.varint_u32()?),
        },
        7 => QueryRequest::TopKComponents {
            graph: GraphId(r.varint_u32()?),
            rank_by: RankBy::from_code(r.u8()?)?,
            page_size: r.varint_u32()?,
            cursor: match r.u8()? {
                0 => None,
                1 => Some(decode_bytes(r)?.to_vec()),
                _ => return None,
            },
        },
        _ => return None,
    };
    Some(query)
}

fn encode_error(error: &ServiceError, out: &mut Vec<u8>) {
    varint::encode_u32(error.code() as u32, out);
    match error {
        ServiceError::UnknownGraph { graph } => varint::encode_u32(graph.0, out),
        ServiceError::VertexOutOfRange { vertex } => varint::encode_u32(*vertex, out),
        ServiceError::Enumeration(message) => encode_str(message, out),
        ServiceError::InvalidCursor { reason } => encode_str(reason, out),
        ServiceError::DeadlineExceeded => {}
        ServiceError::Unsupported { what } => encode_str(what, out),
        ServiceError::MalformedRequest { reason } => encode_str(reason, out),
        ServiceError::Transport { reason } => encode_str(reason, out),
        ServiceError::LoadFailed { reason } => encode_str(reason, out),
        ServiceError::Overloaded => {}
        ServiceError::Unauthorized => {}
    }
}

fn decode_error(r: &mut Reader<'_>) -> Option<ServiceError> {
    let error = match r.varint_u32()? {
        1 => ServiceError::UnknownGraph {
            graph: GraphId(r.varint_u32()?),
        },
        2 => ServiceError::VertexOutOfRange {
            vertex: r.varint_u32()?,
        },
        3 => ServiceError::Enumeration(decode_string(r)?),
        4 => ServiceError::InvalidCursor {
            reason: decode_string(r)?,
        },
        5 => ServiceError::DeadlineExceeded,
        6 => ServiceError::Unsupported {
            what: decode_string(r)?,
        },
        7 => ServiceError::MalformedRequest {
            reason: decode_string(r)?,
        },
        8 => ServiceError::Transport {
            reason: decode_string(r)?,
        },
        9 => ServiceError::LoadFailed {
            reason: decode_string(r)?,
        },
        10 => ServiceError::Overloaded,
        11 => ServiceError::Unauthorized,
        _ => return None,
    };
    Some(error)
}

fn encode_response_body(response: &QueryResponse, out: &mut Vec<u8>) {
    match response {
        QueryResponse::Components(components) => {
            out.push(0);
            encode_components(components, out);
        }
        QueryResponse::Connectivity(value) => {
            out.push(1);
            varint::encode_u32(*value, out);
        }
        QueryResponse::Cut(cut) => {
            out.push(2);
            match cut {
                None => out.push(0),
                Some(vertices) => {
                    out.push(1);
                    varint::encode_u32(vertices.len() as u32, out);
                    encode_row(vertices, out);
                }
            }
        }
        QueryResponse::Stats {
            num_vertices,
            num_edges,
            indexed,
            max_k,
            ordering,
            depth_limit,
            scheduling,
            epoch,
            qos,
        } => {
            out.push(3);
            varint::encode_u64(*num_vertices as u64, out);
            varint::encode_u64(*num_edges as u64, out);
            out.push(u8::from(*indexed));
            varint::encode_u32(*max_k, out);
            out.push(ordering.code());
            encode_option_u32(*depth_limit, out);
            // Scheduling observability block — four varints since version
            // 3, plus the five fleet counters of version 4, the three
            // update counters of version 5 and the compaction counter of
            // version 6 (see PROTOCOL_VERSION).
            varint::encode_u64(scheduling.work_items, out);
            varint::encode_u64(scheduling.steals, out);
            varint::encode_u64(scheduling.splits, out);
            varint::encode_u64(scheduling.cancelled_runs, out);
            varint::encode_u64(scheduling.retries, out);
            varint::encode_u64(scheduling.requeues, out);
            varint::encode_u64(scheduling.quarantines, out);
            varint::encode_u64(scheduling.reinstatements, out);
            varint::encode_u64(scheduling.local_fallbacks, out);
            varint::encode_u64(scheduling.update_batches, out);
            varint::encode_u64(scheduling.update_edges, out);
            varint::encode_u64(scheduling.update_rebuilds, out);
            varint::encode_u64(scheduling.compactions, out);
            varint::encode_u64(*epoch, out);
            // Engine-wide QoS block (version 6).
            varint::encode_u64(qos.cache_hits, out);
            varint::encode_u64(qos.cache_misses, out);
            varint::encode_u64(qos.coalesced, out);
            varint::encode_u64(qos.shed, out);
            varint::encode_u64(qos.queue_depth, out);
        }
        QueryResponse::Page {
            entries,
            next_cursor,
        } => {
            out.push(4);
            varint::encode_u32(entries.len() as u32, out);
            for entry in entries {
                varint::encode_u32(entry.k, out);
                varint::encode_u64(entry.internal_edges, out);
                encode_component(&entry.component, out);
            }
            match next_cursor {
                None => out.push(0),
                Some(bytes) => {
                    out.push(1);
                    encode_bytes(bytes, out);
                }
            }
        }
        QueryResponse::Error(error) => {
            out.push(5);
            encode_error(error, out);
        }
        QueryResponse::Loaded {
            graph,
            num_vertices,
            num_edges,
            self_loops,
            duplicates,
            zero_copy,
        } => {
            out.push(6);
            varint::encode_u32(graph.0, out);
            varint::encode_u64(*num_vertices, out);
            varint::encode_u64(*num_edges, out);
            varint::encode_u64(*self_loops, out);
            varint::encode_u64(*duplicates, out);
            out.push(u8::from(*zero_copy));
        }
        QueryResponse::Updated {
            epoch,
            repaired_nodes,
            rebuilt,
        } => {
            out.push(7);
            varint::encode_u64(*epoch, out);
            varint::encode_u32(*repaired_nodes, out);
            out.push(u8::from(*rebuilt));
        }
        QueryResponse::HandshakeOk => {
            out.push(8);
        }
    }
}

fn decode_response_body(r: &mut Reader<'_>) -> Option<QueryResponse> {
    let response = match r.u8()? {
        0 => QueryResponse::Components(decode_components(r)?),
        1 => QueryResponse::Connectivity(r.varint_u32()?),
        2 => QueryResponse::Cut(match r.u8()? {
            0 => None,
            1 => {
                let count = r.varint_u32()? as usize;
                Some(r.row(count)?)
            }
            _ => return None,
        }),
        3 => QueryResponse::Stats {
            num_vertices: usize::try_from(r.varint_u64()?).ok()?,
            num_edges: usize::try_from(r.varint_u64()?).ok()?,
            indexed: match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
            max_k: r.varint_u32()?,
            ordering: OrderingPolicy::from_code(r.u8()?)?,
            depth_limit: decode_option_u32(r)?,
            scheduling: SchedulingStats {
                work_items: r.varint_u64()?,
                steals: r.varint_u64()?,
                splits: r.varint_u64()?,
                cancelled_runs: r.varint_u64()?,
                retries: r.varint_u64()?,
                requeues: r.varint_u64()?,
                quarantines: r.varint_u64()?,
                reinstatements: r.varint_u64()?,
                local_fallbacks: r.varint_u64()?,
                update_batches: r.varint_u64()?,
                update_edges: r.varint_u64()?,
                update_rebuilds: r.varint_u64()?,
                compactions: r.varint_u64()?,
            },
            epoch: r.varint_u64()?,
            qos: QosStats {
                cache_hits: r.varint_u64()?,
                cache_misses: r.varint_u64()?,
                coalesced: r.varint_u64()?,
                shed: r.varint_u64()?,
                queue_depth: r.varint_u64()?,
            },
        },
        4 => {
            let count = r.varint_u32()? as usize;
            if count > r.remaining() {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(RankedEntry {
                    k: r.varint_u32()?,
                    internal_edges: r.varint_u64()?,
                    component: decode_component(r)?,
                });
            }
            let next_cursor = match r.u8()? {
                0 => None,
                1 => Some(decode_bytes(r)?.to_vec()),
                _ => return None,
            };
            QueryResponse::Page {
                entries,
                next_cursor,
            }
        }
        5 => QueryResponse::Error(decode_error(r)?),
        7 => QueryResponse::Updated {
            epoch: r.varint_u64()?,
            repaired_nodes: r.varint_u32()?,
            rebuilt: match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        },
        6 => QueryResponse::Loaded {
            graph: GraphId(r.varint_u32()?),
            num_vertices: r.varint_u64()?,
            num_edges: r.varint_u64()?,
            self_loops: r.varint_u64()?,
            duplicates: r.varint_u64()?,
            zero_copy: match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        },
        8 => QueryResponse::HandshakeOk,
        _ => return None,
    };
    Some(response)
}

impl Request {
    /// Serialises the request as a checksummed protocol-v4 message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        encode_header(KIND_REQUEST, &mut out);
        varint::encode_u64(self.request_id, &mut out);
        encode_option_u32(self.deadline_hint_ms, &mut out);
        match &self.body {
            RequestBody::Query(query) => {
                out.push(0);
                encode_query(query, &mut out);
            }
            RequestBody::Batch(queries) => {
                out.push(1);
                varint::encode_u32(queries.len() as u32, &mut out);
                for q in queries {
                    encode_query(q, &mut out);
                }
            }
            RequestBody::WorkItem { k, item } => {
                out.push(2);
                varint::encode_u32(*k, &mut out);
                encode_bytes(&item.to_bytes(), &mut out);
            }
            RequestBody::LoadGraph { name, path, format } => {
                out.push(3);
                encode_str(name, &mut out);
                encode_str(path, &mut out);
                out.push(format.code());
            }
            RequestBody::ApplyUpdates { graph, updates } => {
                out.push(4);
                varint::encode_u32(graph.0, &mut out);
                varint::encode_u32(updates.len() as u32, &mut out);
                for update in updates {
                    out.push(update.op.code());
                    varint::encode_u32(update.u, &mut out);
                    varint::encode_u32(update.v, &mut out);
                }
            }
            RequestBody::Handshake { token } => {
                out.push(5);
                encode_str(token, &mut out);
            }
        }
        seal(out)
    }

    /// Deserialises a protocol-v4 request: integrity checksum first, then
    /// full structural validation (including the embedded work item's graph
    /// invariants).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        let bytes = verify_checksum(bytes)?;
        let mut r = decode_header(bytes, KIND_REQUEST)?;
        let request_id = r
            .varint_u64()
            .ok_or_else(|| malformed("request id truncated"))?;
        let deadline_hint_ms =
            decode_option_u32(&mut r).ok_or_else(|| malformed("deadline hint malformed"))?;
        let body = match r.u8().ok_or_else(|| malformed("request body missing"))? {
            0 => RequestBody::Query(
                decode_query(&mut r).ok_or_else(|| malformed("query malformed"))?,
            ),
            1 => {
                let count = r
                    .varint_u32()
                    .ok_or_else(|| malformed("batch count truncated"))?
                    as usize;
                if count > r.remaining() {
                    return Err(malformed("batch count disagrees with the buffer"));
                }
                let mut queries = Vec::with_capacity(count);
                for _ in 0..count {
                    queries.push(decode_query(&mut r).ok_or_else(|| malformed("query malformed"))?);
                }
                RequestBody::Batch(queries)
            }
            2 => {
                let k = r
                    .varint_u32()
                    .ok_or_else(|| malformed("work-item k truncated"))?;
                let item_bytes =
                    decode_bytes(&mut r).ok_or_else(|| malformed("work item truncated"))?;
                RequestBody::WorkItem {
                    k,
                    item: CsrWorkItem::from_bytes(item_bytes)?,
                }
            }
            3 => RequestBody::LoadGraph {
                name: decode_string(&mut r).ok_or_else(|| malformed("load name malformed"))?,
                path: decode_string(&mut r).ok_or_else(|| malformed("load path malformed"))?,
                format: r
                    .u8()
                    .and_then(LoadFormat::from_code)
                    .ok_or_else(|| malformed("unknown load format"))?,
            },
            4 => {
                let graph = GraphId(
                    r.varint_u32()
                        .ok_or_else(|| malformed("update graph id truncated"))?,
                );
                let count = r
                    .varint_u32()
                    .ok_or_else(|| malformed("update count truncated"))?
                    as usize;
                // Each update is at least three bytes (op + two varints).
                if count > r.remaining() {
                    return Err(malformed("update count disagrees with the buffer"));
                }
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let op = r
                        .u8()
                        .and_then(UpdateOp::from_code)
                        .ok_or_else(|| malformed("unknown update op"))?;
                    let u = r
                        .varint_u32()
                        .ok_or_else(|| malformed("update endpoint truncated"))?;
                    let v = r
                        .varint_u32()
                        .ok_or_else(|| malformed("update endpoint truncated"))?;
                    updates.push(EdgeUpdate { op, u, v });
                }
                RequestBody::ApplyUpdates { graph, updates }
            }
            5 => RequestBody::Handshake {
                token: decode_string(&mut r)
                    .ok_or_else(|| malformed("handshake token malformed"))?,
            },
            _ => return Err(malformed("unknown request body tag")),
        };
        r.finish()
            .ok_or_else(|| malformed("trailing bytes after the request"))?;
        Ok(Request {
            request_id,
            deadline_hint_ms,
            body,
        })
    }
}

impl Response {
    /// Serialises the response as a checksummed protocol-v4 message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        encode_header(KIND_RESPONSE, &mut out);
        varint::encode_u64(self.request_id, &mut out);
        match &self.body {
            ResponseBody::Query(response) => {
                out.push(0);
                encode_response_body(response, &mut out);
            }
            ResponseBody::Batch(responses) => {
                out.push(1);
                varint::encode_u32(responses.len() as u32, &mut out);
                for response in responses {
                    encode_response_body(response, &mut out);
                }
            }
        }
        seal(out)
    }

    /// Deserialises a protocol-v4 response: integrity checksum first, then
    /// full structural validation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        let bytes = verify_checksum(bytes)?;
        let mut r = decode_header(bytes, KIND_RESPONSE)?;
        let request_id = r
            .varint_u64()
            .ok_or_else(|| malformed("response id truncated"))?;
        let body = match r.u8().ok_or_else(|| malformed("response body missing"))? {
            0 => ResponseBody::Query(
                decode_response_body(&mut r)
                    .ok_or_else(|| malformed("query response malformed"))?,
            ),
            1 => {
                let count = r
                    .varint_u32()
                    .ok_or_else(|| malformed("batch count truncated"))?
                    as usize;
                if count > r.remaining() {
                    return Err(malformed("batch count disagrees with the buffer"));
                }
                let mut responses = Vec::with_capacity(count);
                for _ in 0..count {
                    responses.push(
                        decode_response_body(&mut r)
                            .ok_or_else(|| malformed("query response malformed"))?,
                    );
                }
                ResponseBody::Batch(responses)
            }
            _ => return Err(malformed("unknown response body tag")),
        };
        r.finish()
            .ok_or_else(|| malformed("trailing bytes after the response"))?;
        Ok(Response { request_id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::CsrGraph;

    fn sample_item() -> CsrWorkItem {
        let graph =
            CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14])
    }

    #[test]
    fn request_envelopes_roundtrip() {
        let id = GraphId(7);
        let requests = vec![
            Request::query(1, QueryRequest::GraphStats { graph: id }),
            Request {
                request_id: u64::MAX,
                deadline_hint_ms: Some(250),
                body: RequestBody::Batch(vec![
                    QueryRequest::EnumerateKvccs { graph: id, k: 3 },
                    QueryRequest::TopKComponents {
                        graph: id,
                        rank_by: RankBy::Density,
                        page_size: 10,
                        cursor: Some(vec![1, 2, 3]),
                    },
                ]),
            },
            Request {
                request_id: 42,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem {
                    k: 2,
                    item: sample_item(),
                },
            },
            Request {
                request_id: 43,
                deadline_hint_ms: Some(1000),
                body: RequestBody::LoadGraph {
                    name: "snap-million".into(),
                    path: "/data/snap/million.txt".into(),
                    format: LoadFormat::EdgeList,
                },
            },
            Request {
                request_id: 44,
                deadline_hint_ms: None,
                body: RequestBody::LoadGraph {
                    name: String::new(),
                    path: "/data/graph.kcsr".into(),
                    format: LoadFormat::Kcsr,
                },
            },
            Request {
                request_id: 45,
                deadline_hint_ms: Some(50),
                body: RequestBody::ApplyUpdates {
                    graph: id,
                    updates: vec![
                        EdgeUpdate::insert(3, 9),
                        EdgeUpdate::delete(0, 1),
                        EdgeUpdate::insert(7, 2),
                    ],
                },
            },
            Request {
                request_id: 46,
                deadline_hint_ms: None,
                body: RequestBody::ApplyUpdates {
                    graph: id,
                    updates: Vec::new(),
                },
            },
            Request {
                request_id: 47,
                deadline_hint_ms: None,
                body: RequestBody::Handshake {
                    token: "hunter2".into(),
                },
            },
            Request {
                request_id: 48,
                deadline_hint_ms: Some(5),
                body: RequestBody::Handshake {
                    token: String::new(),
                },
            },
        ];
        for request in requests {
            let bytes = request.to_bytes();
            assert_eq!(Request::from_bytes(&bytes).unwrap(), request);
            // A response decoder must refuse a request buffer.
            assert!(Response::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn response_envelopes_roundtrip() {
        let response = Response {
            request_id: 9,
            body: ResponseBody::Batch(vec![
                QueryResponse::Components(vec![
                    KVertexConnectedComponent::new(vec![1, 2, 3]),
                    KVertexConnectedComponent::new(vec![3, 4, 5]),
                ]),
                QueryResponse::Connectivity(4),
                QueryResponse::Cut(None),
                QueryResponse::Cut(Some(vec![2, 9])),
                QueryResponse::Stats {
                    num_vertices: 100,
                    num_edges: 500,
                    indexed: true,
                    max_k: 6,
                    ordering: OrderingPolicy::Hybrid,
                    depth_limit: Some(4),
                    scheduling: SchedulingStats {
                        work_items: 42,
                        steals: 7,
                        splits: 3,
                        cancelled_runs: 1,
                        retries: 11,
                        requeues: 5,
                        quarantines: 2,
                        reinstatements: 1,
                        local_fallbacks: 4,
                        update_batches: 6,
                        update_edges: 120,
                        update_rebuilds: 1,
                        compactions: 2,
                    },
                    epoch: 6,
                    qos: QosStats {
                        cache_hits: 900,
                        cache_misses: 33,
                        coalesced: 12,
                        shed: 4,
                        queue_depth: 1,
                    },
                },
                QueryResponse::Page {
                    entries: vec![RankedEntry {
                        k: 3,
                        internal_edges: 6,
                        component: KVertexConnectedComponent::new(vec![5, 6, 7, 8]),
                    }],
                    next_cursor: Some(vec![9, 9]),
                },
                QueryResponse::Error(ServiceError::DeadlineExceeded),
                QueryResponse::Error(ServiceError::InvalidCursor {
                    reason: "stale".into(),
                }),
                QueryResponse::Error(ServiceError::LoadFailed {
                    reason: "no such file".into(),
                }),
                QueryResponse::Error(ServiceError::Overloaded),
                QueryResponse::Error(ServiceError::Unauthorized),
                QueryResponse::HandshakeOk,
                QueryResponse::Loaded {
                    graph: GraphId(3),
                    num_vertices: 131_072,
                    num_edges: 1_000_000,
                    self_loops: 5,
                    duplicates: 1234,
                    zero_copy: true,
                },
                QueryResponse::Updated {
                    epoch: 8,
                    repaired_nodes: 17,
                    rebuilt: false,
                },
                QueryResponse::Updated {
                    epoch: u64::MAX,
                    repaired_nodes: 0,
                    rebuilt: true,
                },
            ]),
        };
        let bytes = response.to_bytes();
        assert_eq!(Response::from_bytes(&bytes).unwrap(), response);
        assert!(Request::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncations_and_garbage_are_rejected() {
        let request = Request {
            request_id: 3,
            deadline_hint_ms: Some(10),
            body: RequestBody::WorkItem {
                k: 2,
                item: sample_item(),
            },
        };
        let good = request.to_bytes();
        for cut in 0..good.len() {
            assert!(Request::from_bytes(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Request::from_bytes(&trailing).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 1;
        assert!(Request::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn other_protocol_versions_are_rejected_as_unsupported_not_corrupt() {
        // A peer speaking another protocol revision checksums differently
        // (or not at all), so its frames must fail with the documented
        // "unsupported protocol version" — never be misreported as
        // in-flight corruption by the integrity check running first.
        let good = Request::query(1, QueryRequest::GraphStats { graph: GraphId(0) }).to_bytes();
        for version in [1u8, 3, 4, 5, 255] {
            let mut other = good.clone();
            other[4] = version;
            match Request::from_bytes(&other).unwrap_err() {
                GraphError::MalformedBytes { reason } => assert_eq!(
                    reason, "unsupported protocol version",
                    "version {version} misclassified"
                ),
                other => panic!("expected a malformed-bytes rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The v4 integrity trailer must catch *any* one-bit corruption —
        // including flips that would otherwise decode as a different valid
        // message (e.g. inside the `k` varint of a work item) and silently
        // change the enumeration.
        let request = Request {
            request_id: 77,
            deadline_hint_ms: None,
            body: RequestBody::WorkItem {
                k: 2,
                item: sample_item(),
            },
        };
        let good = request.to_bytes();
        assert_eq!(Request::from_bytes(&good).unwrap(), request);
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut flipped = good.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    Request::from_bytes(&flipped).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
        let response = Response {
            request_id: 77,
            body: ResponseBody::Query(QueryResponse::Connectivity(3)),
        };
        let good = response.to_bytes();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut flipped = good.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    Response::from_bytes(&flipped).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
