//! The length-prefixed frame format shared by every transport.
//!
//! A frame is a 4-byte little-endian payload length followed by the payload
//! bytes (a protocol-v2 message, see [`crate::wire::message`]). The format
//! is deliberately minimal: any byte stream — a socket, a pipe, the
//! in-process loopback — becomes a message channel by writing
//! [`encode_frame`] output and feeding received bytes through a
//! [`FrameDecoder`], which reassembles frames across arbitrary chunk
//! boundaries.

/// Upper bound on a single frame payload (64 MiB). A hostile or corrupted
/// length prefix beyond it poisons the stream instead of triggering a
/// multi-gigabyte allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Bytes of the length prefix.
const PREFIX: usize = 4;

/// Wraps a message payload in a frame (length prefix + payload), or
/// reports an oversized payload so transports surface a send-side error
/// instead of crashing the serving thread (giant responses are possible at
/// production graph sizes; senders should paginate or split instead).
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, &'static str> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err("frame payload exceeds the maximum frame size");
    }
    let mut out = Vec::with_capacity(PREFIX + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// Push received chunks with [`FrameDecoder::push`], pop completed payloads
/// with [`FrameDecoder::next_frame`]. A stream whose length prefix exceeds
/// [`MAX_FRAME_PAYLOAD`] is *poisoned*: every further call reports the
/// error, because after a corrupt prefix the frame boundaries are
/// unrecoverable.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read position inside `buf` (consumed bytes are compacted away
    /// whenever they outgrow the unread remainder).
    at: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        // Compact before growing: never hold more than one frame of slack.
        if self.at > self.buf.len() / 2 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `Ok(None)` when more bytes are
    /// needed, or an error once the stream is poisoned by an oversized
    /// length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, &'static str> {
        if self.poisoned {
            return Err("frame stream poisoned by an oversized length prefix");
        }
        let unread = &self.buf[self.at..];
        if unread.len() < PREFIX {
            return Ok(None);
        }
        let len = u32::from_le_bytes(unread[..PREFIX].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            self.poisoned = true;
            return Err("frame stream poisoned by an oversized length prefix");
        }
        if unread.len() < PREFIX + len {
            return Ok(None);
        }
        let payload = unread[PREFIX..PREFIX + len].to_vec();
        self.at += PREFIX + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_reassemble_across_chunk_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 1000], b"hello".to_vec()];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        // Feed the stream one byte at a time; every frame must come out
        // whole and in order.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            decoder.push(&[b]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_prefix_poisons_the_stream() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_le_bytes());
        assert!(decoder.next_frame().is_err());
        // Poisoned for good: pushing valid bytes does not resurrect it.
        decoder.push(&encode_frame(b"ok").unwrap());
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn partial_prefix_waits_for_more_bytes() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&[3, 0]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.push(&[0, 0, b'a', b'b']);
        assert_eq!(decoder.next_frame().unwrap(), None, "payload incomplete");
        decoder.push(b"c");
        assert_eq!(decoder.next_frame().unwrap(), Some(b"abc".to_vec()));
    }
}
