//! The length-prefixed frame format shared by every transport.
//!
//! A frame is a 4-byte little-endian payload length followed by the payload
//! bytes (a protocol message, see [`crate::wire::message`]). The format
//! is deliberately minimal: any byte stream — a socket, a pipe, the
//! in-process loopback — becomes a message channel by writing
//! [`encode_frame`] output and feeding received bytes through a
//! [`FrameDecoder`], which reassembles frames across arbitrary chunk
//! boundaries.

/// Upper bound on a single frame payload (64 MiB). A hostile or corrupted
/// length prefix beyond it poisons the stream instead of triggering a
/// multi-gigabyte allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Bytes of the length prefix.
const PREFIX: usize = 4;

/// Why (and *where*) a frame stream became undecodable.
///
/// After a corrupt length prefix the frame boundaries are unrecoverable, so
/// the error pins down exactly which prefix poisoned the stream: its
/// byte offset from the start of the stream and the length it claimed.
/// Chaos-run diagnostics correlate this offset with the fault schedule to
/// identify the injected corruption that killed a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset of the offending length prefix, counted from the first
    /// byte ever pushed into the decoder (stream-absolute, unaffected by
    /// internal buffer compaction).
    pub offset: u64,
    /// The payload length the prefix claimed (necessarily above
    /// [`MAX_FRAME_PAYLOAD`]).
    pub claimed_len: u32,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame stream poisoned at byte offset {}: length prefix claims {} bytes \
             (maximum frame payload is {} bytes)",
            self.offset, self.claimed_len, MAX_FRAME_PAYLOAD
        )
    }
}

impl std::error::Error for FrameError {}

/// Wraps a message payload in a frame (length prefix + payload), or
/// reports an oversized payload so transports surface a send-side error
/// instead of crashing the serving thread (giant responses are possible at
/// production graph sizes; senders should paginate or split instead).
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, &'static str> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err("frame payload exceeds the maximum frame size");
    }
    let mut out = Vec::with_capacity(PREFIX + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// Push received chunks with [`FrameDecoder::push`], pop completed payloads
/// with [`FrameDecoder::next_frame`]. A stream whose length prefix exceeds
/// [`MAX_FRAME_PAYLOAD`] is *poisoned*: every further call reports the same
/// [`FrameError`] (carrying the offset and the hostile length), because
/// after a corrupt prefix the frame boundaries are unrecoverable.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read position inside `buf` (consumed bytes are compacted away
    /// whenever they outgrow the unread remainder).
    at: usize,
    /// Stream offset of `buf[0]`: bytes discarded by compaction, so frame
    /// positions stay stream-absolute for diagnostics.
    base: u64,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        // Compact before growing: never hold more than one frame of slack.
        if self.at > self.buf.len() / 2 {
            self.buf.drain(..self.at);
            self.base += self.at as u64;
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `Ok(None)` when more bytes are
    /// needed, or the poisoning [`FrameError`] once the stream has been
    /// killed by an oversized length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(error) = self.poisoned {
            return Err(error);
        }
        let unread = &self.buf[self.at..];
        if unread.len() < PREFIX {
            return Ok(None);
        }
        let claimed = u32::from_le_bytes(unread[..PREFIX].try_into().expect("4 bytes"));
        let len = claimed as usize;
        if len > MAX_FRAME_PAYLOAD {
            let error = FrameError {
                offset: self.base + self.at as u64,
                claimed_len: claimed,
            };
            self.poisoned = Some(error);
            return Err(error);
        }
        if unread.len() < PREFIX + len {
            return Ok(None);
        }
        let payload = unread[PREFIX..PREFIX + len].to_vec();
        self.at += PREFIX + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_reassemble_across_chunk_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 1000], b"hello".to_vec()];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        // Feed the stream one byte at a time; every frame must come out
        // whole and in order.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            decoder.push(&[b]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_prefix_poisons_the_stream() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_le_bytes());
        let error = decoder.next_frame().unwrap_err();
        assert_eq!(error.offset, 0);
        assert_eq!(error.claimed_len, u32::MAX);
        // Poisoned for good: pushing valid bytes does not resurrect it, and
        // the diagnostic stays pinned to the original offender.
        decoder.push(&encode_frame(b"ok").unwrap());
        assert_eq!(decoder.next_frame().unwrap_err(), error);
    }

    #[test]
    fn poisoning_offset_is_stream_absolute_across_compaction() {
        // Feed enough valid frames to force internal compaction, then a
        // hostile prefix; the reported offset must count from the first byte
        // of the stream, not from the compacted buffer.
        let mut decoder = FrameDecoder::new();
        let mut offset = 0u64;
        for _ in 0..50 {
            let framed = encode_frame(&[7u8; 100]).unwrap();
            decoder.push(&framed);
            offset += framed.len() as u64;
            assert!(decoder.next_frame().unwrap().is_some());
        }
        let hostile = (MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes();
        decoder.push(&hostile);
        let error = decoder.next_frame().unwrap_err();
        assert_eq!(error.offset, offset);
        assert_eq!(error.claimed_len, MAX_FRAME_PAYLOAD as u32 + 1);
        assert!(error.to_string().contains(&format!("offset {offset}")));
    }

    #[test]
    fn partial_prefix_waits_for_more_bytes() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&[3, 0]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.push(&[0, 0, b'a', b'b']);
        assert_eq!(decoder.next_frame().unwrap(), None, "payload incomplete");
        decoder.push(b"c");
        assert_eq!(decoder.next_frame().unwrap(), Some(b"abc".to_vec()));
    }
}
