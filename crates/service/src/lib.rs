//! `kvcc-service` — a long-lived, batched query engine over hot CSR graphs.
//!
//! The paper's case study (§6.4) is a *query* workload: "all 4-VCCs
//! containing author Jiawei Han". This crate turns the enumeration library
//! into a serving layer for exactly that shape of traffic:
//!
//! * [`ServiceEngine`] holds any number of loaded graphs in [`CsrGraph`]
//!   form (shared, read-only, behind `Arc`), each with a lazily built
//!   [`ConnectivityIndex`] so repeated seed/level/pairwise queries never
//!   re-run flow computations;
//! * queries arrive as plain-data [`QueryRequest`] values and come back as
//!   [`QueryResponse`]s, so a network transport only has to move bytes;
//! * [`ServiceEngine::execute_batch`] drains a batch on a pool of workers,
//!   each owning its own scratch arenas (`CutScratch` for GLOBAL-CUT probes,
//!   a flow arena for local-connectivity probes) — per-request allocations
//!   stay out of the steady state;
//! * **protocol v2** wraps every query in a [`Request`]/[`Response`]
//!   envelope (request id, deadline hint) with numbered [`ServiceError`]
//!   codes, ranked/paginated [`QueryRequest::TopKComponents`] queries and a
//!   multi-graph batch form; the whole vocabulary has a validated,
//!   bincode-free byte codec ([`wire::message`]) built on the shared varint
//!   primitives of [`wire::codec`];
//! * a [`Transport`] moves length-prefixed
//!   frames ([`wire::frame`]) between peers;
//!   [`ServiceEngine::serve`] binds an engine to one, and
//!   [`run_shard_worker`] is a worker
//!   that enumerates [`CsrWorkItem`]s **purely over bytes** — no shared
//!   memory — with [`ServiceEngine::enumerate_sharded`] as the coordinator
//!   that reproduces the whole-graph enumeration from shard frames;
//! * [`CsrWorkItem`] is the self-contained unit of sharded enumeration: a
//!   CSR subgraph plus its id map, with bincode-free
//!   [`to_bytes`](CsrWorkItem::to_bytes) / [`from_bytes`](CsrWorkItem::from_bytes);
//! * **failure handling** — [`TcpTransport`] / [`UnixTransport`] put the
//!   frame format on real sockets (with a [`ShardPool`] accept loop and the
//!   `kvcc-shardd` daemon around it), [`FaultTransport`] injects seeded,
//!   reproducible chaos, and the [`coordinator`] retries, requeues,
//!   quarantines and locally degrades until the sharded enumeration is
//!   byte-identical to the in-process one under every fault schedule;
//! * **mutable graphs (protocol v5)** — [`RequestBody::ApplyUpdates`]
//!   applies a batch of edge inserts/deletes atomically
//!   ([`ServiceEngine::apply_updates`]): in-flight queries keep their
//!   snapshot, the slot's connectivity index is repaired incrementally
//!   instead of rebuilt, every batch bumps the graph's epoch (reported by
//!   `Stats`, stamped into page cursors so stale pagination is rejected),
//!   and the answer ([`QueryResponse::Updated`]) is byte-identical to
//!   reloading the updated graph from scratch;
//! * **query-serving QoS (protocol v6)** — an opt-in [`qos`] layer in front
//!   of every query path: a bounded result cache keyed by
//!   `(graph, epoch, canonical query bytes)` whose hits are byte-identical
//!   to fresh execution and invalidated for free by the mutation epoch,
//!   single-flight coalescing of identical in-flight queries, and
//!   cost-model admission control ([`kvcc::split_cost`] + an online EWMA)
//!   that sheds deadline-infeasible work with the retryable
//!   [`ServiceError::Overloaded`] instead of failing it late; `Stats`
//!   reports the [`QosStats`] counters, and `kvcc-shardd --token` gates
//!   connections behind a shared-secret [`RequestBody::Handshake`].
//!
//! # Quick start
//!
//! ```
//! use kvcc_graph::UndirectedGraph;
//! use kvcc_service::{EngineConfig, QueryRequest, QueryResponse, ServiceEngine};
//!
//! let g = UndirectedGraph::from_edges(
//!     5,
//!     vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
//! )
//! .unwrap();
//! let engine = ServiceEngine::new(EngineConfig::default());
//! let id = engine.load_graph("triangles", &g);
//! let responses = engine.execute_batch(&[
//!     QueryRequest::KvccsContaining { graph: id, seed: 2, k: 2 },
//!     QueryRequest::MaxConnectivity { graph: id, u: 0, v: 4 },
//! ]);
//! assert!(matches!(&responses[0], QueryResponse::Components(c) if c.len() == 2));
//! assert!(matches!(&responses[1], QueryResponse::Connectivity(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod engine;
pub mod protocol;
pub mod qos;
pub mod wire;

pub use coordinator::{run_fleet, CoordinatorConfig, FleetOutcome, FleetStats};
pub use engine::{EngineConfig, LoadReport, ServiceEngine};
pub use protocol::{
    GraphId, LoadFormat, OrderingPolicy, PageCursor, QosStats, QueryRequest, QueryResponse,
    RankedEntry, Request, RequestBody, Response, ResponseBody, SchedulingStats, ServiceError,
};
pub use qos::{AdmissionConfig, AdmissionController, QosConfig, ResultCache, SingleFlight};
pub use wire::faults::{FaultPlan, FaultStatsSnapshot, FaultTransport};
pub use wire::socket::{ShardPool, SocketOptions, StreamTransport, TcpTransport, UnixTransport};
pub use wire::transport::{
    authenticate, call, call_with, run_shard_worker, CallOptions, LoopbackTransport, Transport,
    TransportError,
};
pub use wire::{run_work_item, CsrWorkItem};

// Re-exported so service users need only this crate for the common types.
pub use kvcc::{
    Budget, ConnectivityIndex, KVertexConnectedComponent, KvccOptions, RankBy, UpdateReport,
};
pub use kvcc_graph::{CsrGraph, DeltaGraph, EdgeUpdate, UpdateOp};
