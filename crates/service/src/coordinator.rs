//! The self-healing shard coordinator: distributed `KVCC-ENUM` that
//! survives worker failure.
//!
//! [`run_fleet`] drives a set of self-contained work items
//! ([`CsrWorkItem`], produced by
//! [`crate::ServiceEngine::partition_work`]) across a fleet of shard
//! workers, each reachable through a [`Transport`]. Unlike the PR 4
//! ship-everything-then-collect loop, the coordinator is built for a world
//! where frames get dropped, delayed, corrupted and whole workers die
//! mid-item:
//!
//! * **pipelining** — each worker keeps up to
//!   [`CoordinatorConfig::max_outstanding_per_worker`] items in flight, so
//!   one slow item doesn't idle the connection;
//! * **per-item deadlines** — an item unanswered within
//!   [`CoordinatorConfig::item_timeout`] is requeued (exponential backoff,
//!   capped attempts) and re-sent, to this worker or a healthier one;
//! * **health tracking** — consecutive failures quarantine a worker;
//!   quarantined workers are probed with a real queued item and reinstated
//!   on success; a closed transport retires the worker for good and its
//!   in-flight items are requeued onto the surviving fleet;
//! * **graceful degradation** — an item that exhausts its retry budget, or
//!   a fleet that is entirely gone, falls back to *local* execution on the
//!   coordinator, so the enumeration always completes.
//!
//! All of this is **safe by construction**: work items are idempotent pure
//! functions of their bytes, every result lands in a per-item slot (first
//! completion wins, duplicates from retried items are discarded), and the
//! final merge sorts the union — so the output is byte-identical to the
//! in-process enumeration under *every* fault schedule, which
//! `tests/fleet_parity.rs` asserts against the seeded chaos harness
//! ([`crate::wire::faults`]). The price of resilience is only ever paid in
//! the [`FleetStats`] counters, never in the answer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use kvcc::{KVertexConnectedComponent, KvccOptions};

use crate::protocol::{
    QueryResponse, Request, RequestBody, Response, ResponseBody, SchedulingStats, ServiceError,
};
use crate::wire::transport::{Transport, TransportError};
use crate::wire::{run_work_item, CsrWorkItem};

/// Failure-handling knobs of the shard coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Maximum work items concurrently in flight per worker connection.
    pub max_outstanding_per_worker: usize,
    /// Per-item response deadline; an unanswered item is requeued and the
    /// worker charged with a failure.
    pub item_timeout: Duration,
    /// Total send attempts per item across the whole fleet before the
    /// coordinator gives up on remote execution and runs the item locally
    /// (or fails, when [`CoordinatorConfig::local_fallback`] is off).
    pub max_attempts: u32,
    /// Backoff before retry `a` of an item is `backoff_base << (a - 1)`,
    /// capped at [`CoordinatorConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound of the per-item exponential backoff.
    pub backoff_cap: Duration,
    /// Consecutive failures after which a worker is quarantined (its
    /// in-flight items are requeued and it stops receiving regular work).
    pub quarantine_after: u32,
    /// Delay before a quarantined worker is probed with one queued item;
    /// doubles per failed probe (capped at 8× so reinstatement stays
    /// reachable).
    pub probe_delay: Duration,
    /// Degrade to local execution for items whose retry budget is spent and
    /// when the whole fleet is dead or absent. With `false` those
    /// situations fail the run instead.
    pub local_fallback: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            max_outstanding_per_worker: 4,
            item_timeout: Duration::from_secs(2),
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            quarantine_after: 3,
            probe_delay: Duration::from_millis(25),
            local_fallback: true,
        }
    }
}

impl CoordinatorConfig {
    fn backoff(&self, attempts: u32) -> Duration {
        let shift = attempts.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// What the coordinator had to do to finish one sharded enumeration. Purely
/// observational: none of these counters influence the merged output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Work items shipped at least once.
    pub items_total: u64,
    /// Re-sends after a retryable failure (timeout, in-flight corruption,
    /// retryable peer error).
    pub retries: u64,
    /// In-flight items pulled off a dead or quarantined worker and requeued
    /// onto the rest of the fleet.
    pub requeues: u64,
    /// Per-item deadlines that expired.
    pub timeouts: u64,
    /// Worker quarantine transitions.
    pub quarantines: u64,
    /// Quarantined workers reinstated by a successful probe.
    pub reinstatements: u64,
    /// Workers retired for good (transport closed or frame stream
    /// poisoned).
    pub worker_deaths: u64,
    /// Items completed by local execution on the coordinator (retry budget
    /// exhausted, or no live workers left).
    pub local_fallbacks: u64,
}

impl FleetStats {
    /// Folds the fleet counters into the wire-visible scheduling telemetry
    /// of a graph slot.
    pub fn fold_into(&self, scheduling: &mut SchedulingStats) {
        scheduling.retries += self.retries;
        scheduling.requeues += self.requeues;
        scheduling.quarantines += self.quarantines;
        scheduling.reinstatements += self.reinstatements;
        scheduling.local_fallbacks += self.local_fallbacks;
    }
}

/// A finished sharded enumeration: the merged components (byte-identical to
/// the in-process path) plus the failure-handling record.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The merged, sorted component set.
    pub components: Vec<KVertexConnectedComponent>,
    /// What it took to get there.
    pub stats: FleetStats,
}

/// An item waiting (or waiting again) to be shipped.
struct Pending {
    idx: usize,
    /// Send attempts already spent on this item.
    attempts: u32,
    /// Earliest instant the item may be re-sent (exponential backoff).
    not_before: Instant,
}

/// Shared coordinator state; one mutex, worker threads park on the condvar.
struct Inner {
    queue: VecDeque<Pending>,
    /// One slot per item; the first completion wins, so a retried item that
    /// eventually completes twice contributes exactly once.
    results: Vec<Option<Vec<KVertexConnectedComponent>>>,
    completed: usize,
    /// First terminal error any worker saw; ends the run.
    terminal: Option<ServiceError>,
    next_request_id: u64,
    stats: FleetStats,
}

struct Shared<'a> {
    items: &'a [CsrWorkItem],
    k: u32,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Shared<'_> {
    fn store_result(&self, idx: usize, components: Vec<KVertexConnectedComponent>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.results[idx].is_none() {
            inner.results[idx] = Some(components);
            inner.completed += 1;
            if inner.completed == self.items.len() {
                self.ready.notify_all();
            }
        }
    }

    fn requeue(&self, inner: &mut Inner, idx: usize, attempts: u32, config: &CoordinatorConfig) {
        inner.queue.push_back(Pending {
            idx,
            attempts,
            not_before: Instant::now() + config.backoff(attempts),
        });
        self.ready.notify_all();
    }
}

/// One item this worker has shipped and is waiting on.
struct InFlight {
    id: u64,
    idx: usize,
    /// Attempts including this one.
    attempts: u32,
    deadline: Instant,
}

/// Per-worker connection state machine.
struct WorkerState<'a, 'b> {
    shared: &'a Shared<'b>,
    transport: &'a dyn Transport,
    config: &'a CoordinatorConfig,
    options: &'a KvccOptions,
    in_flight: VecDeque<InFlight>,
    consecutive_failures: u32,
    quarantined: bool,
    probe_round: u32,
    probe_at: Instant,
}

/// What a worker-loop iteration decided to do next.
enum Step {
    /// Run this attempt-capped item locally, then continue.
    Local(Pending),
    /// Ship these items (request id, pending entry).
    Send(Vec<(u64, Pending)>),
    /// Nothing to send; wait for a response to in-flight work.
    Receive,
    /// The run is over (all items done, or a terminal error was recorded).
    Done,
}

impl<'b> WorkerState<'_, 'b> {
    /// Charges the worker with one failure and applies the health state
    /// machine: quarantine on the configured streak (requeueing everything
    /// in flight), exponential probe backoff while quarantined.
    fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        let now = Instant::now();
        if self.quarantined {
            self.probe_round = (self.probe_round + 1).min(3);
            self.probe_at = now + self.config.probe_delay * (1 << self.probe_round);
        } else if self.consecutive_failures >= self.config.quarantine_after {
            self.quarantined = true;
            self.probe_round = 0;
            self.probe_at = now + self.config.probe_delay;
            let mut inner = self.shared.inner.lock().unwrap();
            inner.stats.quarantines += 1;
            inner.stats.requeues += self.in_flight.len() as u64;
            while let Some(entry) = self.in_flight.pop_front() {
                self.shared
                    .requeue(&mut inner, entry.idx, entry.attempts, self.config);
            }
        }
    }

    /// Marks the worker healthy again after any successfully decoded,
    /// attributable response.
    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.quarantined {
            self.quarantined = false;
            self.probe_round = 0;
            self.shared.inner.lock().unwrap().stats.reinstatements += 1;
        }
    }

    /// Requeues everything in flight and retires the worker (transport
    /// closed or unusable). The surviving fleet — or the local fallback —
    /// picks the items up.
    fn die(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.stats.worker_deaths += 1;
        inner.stats.requeues += self.in_flight.len() as u64;
        while let Some(entry) = self.in_flight.pop_front() {
            self.shared
                .requeue(&mut inner, entry.idx, entry.attempts, self.config);
        }
    }

    /// Requeues one failed in-flight entry for another try.
    fn retry_entry(&mut self, entry: InFlight) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.stats.retries += 1;
        self.shared
            .requeue(&mut inner, entry.idx, entry.attempts, self.config);
    }

    /// Decides the next action under the shared lock, parking on the
    /// condvar while there is nothing to do.
    fn next_step(&mut self) -> Step {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.terminal.is_some() || inner.completed == self.shared.items.len() {
                return Step::Done;
            }
            let now = Instant::now();
            // A quarantined worker sends at most one probe item, and only
            // once its probe delay has passed and nothing is outstanding.
            let capacity = if self.quarantined {
                usize::from(now >= self.probe_at && self.in_flight.is_empty())
            } else {
                self.config
                    .max_outstanding_per_worker
                    .saturating_sub(self.in_flight.len())
            };
            let mut to_send = Vec::new();
            while to_send.len() < capacity {
                let Some(pos) = inner.queue.iter().position(|p| p.not_before <= now) else {
                    break;
                };
                let pending = inner.queue.remove(pos).expect("position just found");
                if pending.attempts >= self.config.max_attempts {
                    // Retry budget spent: this item never goes on the wire
                    // again. Hand the batch built so far back to the queue —
                    // those entries are already dequeued and would otherwise
                    // be lost (their ids are simply never used; stale-id
                    // handling covers a worker that somehow answers one).
                    for (_, p) in to_send.drain(..).rev() {
                        inner.queue.push_front(p);
                    }
                    self.shared.ready.notify_all();
                    // Degrade to local execution (or fail the run).
                    if self.config.local_fallback {
                        return Step::Local(pending);
                    }
                    inner.terminal = Some(ServiceError::Transport {
                        reason: format!(
                            "work item {} exhausted its {} attempts and local fallback is disabled",
                            pending.idx, self.config.max_attempts
                        ),
                    });
                    self.shared.ready.notify_all();
                    return Step::Done;
                }
                let id = inner.next_request_id;
                inner.next_request_id += 1;
                to_send.push((id, pending));
            }
            if !to_send.is_empty() {
                return Step::Send(to_send);
            }
            if !self.in_flight.is_empty() && !self.quarantined {
                return Step::Receive;
            }
            // Nothing to ship and nothing we may wait on productively:
            // park briefly (bounded, so backoffs and probe delays are
            // re-examined without a dedicated timer thread).
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(inner, Duration::from_millis(2))
                .unwrap();
            inner = guard;
            if self.quarantined && !self.in_flight.is_empty() {
                return Step::Receive; // a probe is outstanding
            }
        }
    }

    /// Ships one item; `true` while the connection is usable.
    fn send_one(&mut self, id: u64, pending: Pending) -> bool {
        let request = Request {
            request_id: id,
            deadline_hint_ms: None,
            body: RequestBody::WorkItem {
                k: self.shared.k,
                item: self.shared.items[pending.idx].clone(),
            },
        };
        let attempts = pending.attempts + 1;
        match self.transport.send(&request.to_bytes()) {
            Ok(()) => {
                self.in_flight.push_back(InFlight {
                    id,
                    idx: pending.idx,
                    attempts,
                    deadline: Instant::now() + self.config.item_timeout,
                });
                true
            }
            Err(TransportError::TimedOut) => {
                let mut inner = self.shared.inner.lock().unwrap();
                inner.stats.retries += 1;
                self.shared
                    .requeue(&mut inner, pending.idx, attempts, self.config);
                drop(inner);
                self.record_failure();
                true
            }
            Err(_fatal) => {
                let mut inner = self.shared.inner.lock().unwrap();
                inner.stats.requeues += 1;
                self.shared
                    .requeue(&mut inner, pending.idx, pending.attempts, self.config);
                drop(inner);
                self.die();
                false
            }
        }
    }

    /// Requeues every in-flight item whose deadline has passed; `true` when
    /// at least one expired.
    fn expire_overdue(&mut self) -> bool {
        let now = Instant::now();
        let mut expired_any = false;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deadline <= now {
                let entry = self.in_flight.remove(i).expect("index in range");
                {
                    let mut inner = self.shared.inner.lock().unwrap();
                    inner.stats.timeouts += 1;
                    inner.stats.retries += 1;
                    self.shared
                        .requeue(&mut inner, entry.idx, entry.attempts, self.config);
                }
                self.record_failure();
                expired_any = true;
            } else {
                i += 1;
            }
        }
        expired_any
    }

    /// Waits (boundedly) for one response and applies it; `true` while the
    /// connection is usable.
    fn receive_one(&mut self) -> bool {
        if self.expire_overdue() {
            return true; // re-plan: the queue changed and we may be quarantined now
        }
        let Some(earliest) = self.in_flight.iter().map(|e| e.deadline).min() else {
            return true;
        };
        let wait = earliest
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match self.transport.recv_timeout(wait) {
            Ok(Some(frame)) => {
                self.apply_frame(&frame);
                true
            }
            Err(TransportError::TimedOut) => {
                self.expire_overdue();
                true
            }
            Ok(None) | Err(_) => {
                self.die();
                false
            }
        }
    }

    /// Applies one received frame to the in-flight set.
    fn apply_frame(&mut self, frame: &[u8]) {
        let Ok(response) = Response::from_bytes(frame) else {
            // The response was corrupted in flight: the frame cannot be
            // attributed by id, but responses arrive in request order on
            // these ordered transports, so charge the oldest outstanding
            // item. Misattribution only costs a duplicate execution, never
            // a wrong answer (results are slotted per item).
            if let Some(entry) = self.in_flight.pop_front() {
                self.retry_entry(entry);
            }
            self.record_failure();
            return;
        };
        let position = self
            .in_flight
            .iter()
            .position(|e| e.id == response.request_id);
        let Some(position) = position else {
            if response.request_id == 0 {
                // The *worker* answered "malformed request": our frame was
                // mangled on the way out. Same oldest-first attribution.
                if let Some(entry) = self.in_flight.pop_front() {
                    self.retry_entry(entry);
                }
                self.record_failure();
            }
            // A stale id (answer to an attempt we already timed out and
            // requeued): drop it — its item either completed elsewhere or
            // will — but it does prove the worker is alive.
            return;
        };
        let entry = self.in_flight.remove(position).expect("position in range");
        match response.body {
            ResponseBody::Query(QueryResponse::Components(components)) => {
                self.shared.store_result(entry.idx, components);
                self.record_success();
            }
            ResponseBody::Query(QueryResponse::Error(e)) => {
                if e.is_retryable() {
                    self.retry_entry(entry);
                    self.record_failure();
                } else {
                    let mut inner = self.shared.inner.lock().unwrap();
                    if inner.terminal.is_none() {
                        inner.terminal = Some(e);
                    }
                    self.shared.ready.notify_all();
                }
            }
            _ => {
                // A shape the worker should never answer an item with:
                // treat as in-flight corruption.
                self.retry_entry(entry);
                self.record_failure();
            }
        }
    }

    /// Runs one item locally on the coordinator (retry budget exhausted).
    fn run_local(&mut self, pending: Pending) {
        self.shared.inner.lock().unwrap().stats.local_fallbacks += 1;
        execute_local(self.shared, pending.idx, self.options);
    }

    fn run(&mut self) {
        loop {
            match self.next_step() {
                Step::Done => return,
                Step::Local(pending) => self.run_local(pending),
                Step::Send(batch) => {
                    let mut batch = batch.into_iter();
                    while let Some((id, pending)) = batch.next() {
                        if !self.send_one(id, pending) {
                            // Transport died mid-batch. `send_one` requeued
                            // the item it was holding and `die` requeued the
                            // in-flight set; the unsent remainder of the
                            // batch must go back too, or the fleet loses it.
                            let rest: Vec<Pending> = batch.map(|(_, p)| p).collect();
                            if !rest.is_empty() {
                                let mut inner = self.shared.inner.lock().unwrap();
                                inner.stats.requeues += rest.len() as u64;
                                for p in rest {
                                    self.shared
                                        .requeue(&mut inner, p.idx, p.attempts, self.config);
                                }
                            }
                            return;
                        }
                    }
                }
                Step::Receive => {
                    if !self.receive_one() {
                        return;
                    }
                }
            }
        }
    }
}

/// Enumerates one item on the coordinator and stores its result. Local
/// execution is the same pure function the shards run
/// ([`run_work_item`]), so degraded runs stay byte-identical.
fn execute_local(shared: &Shared<'_>, idx: usize, options: &KvccOptions) {
    match run_work_item(&shared.items[idx], shared.k, options) {
        Ok(components) => shared.store_result(idx, components),
        Err(e) => {
            let mut inner = shared.inner.lock().unwrap();
            if inner.terminal.is_none() {
                inner.terminal = Some(e.into());
            }
            shared.ready.notify_all();
        }
    }
}

/// Drives `items` to completion across the shard fleet and merges the
/// results; the engine-facing entry point behind
/// [`crate::ServiceEngine::enumerate_sharded`]. See the module docs for the
/// failure model.
pub fn run_fleet(
    items: &[CsrWorkItem],
    k: u32,
    shards: &[&dyn Transport],
    options: &KvccOptions,
    config: &CoordinatorConfig,
) -> Result<FleetOutcome, ServiceError> {
    if shards.is_empty() && !config.local_fallback {
        return Err(ServiceError::Transport {
            reason: "no shard transports supplied and local fallback is disabled".into(),
        });
    }
    let shared = Shared {
        items,
        k,
        inner: Mutex::new(Inner {
            queue: items
                .iter()
                .enumerate()
                .map(|(idx, _)| Pending {
                    idx,
                    attempts: 0,
                    not_before: Instant::now(),
                })
                .collect(),
            results: vec![None; items.len()],
            completed: 0,
            terminal: None,
            next_request_id: 1,
            stats: FleetStats {
                items_total: items.len() as u64,
                ..FleetStats::default()
            },
        }),
        ready: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for &transport in shards {
            let shared = &shared;
            scope.spawn(move || {
                WorkerState {
                    shared,
                    transport,
                    config,
                    options,
                    in_flight: VecDeque::new(),
                    consecutive_failures: 0,
                    quarantined: false,
                    probe_round: 0,
                    probe_at: Instant::now(),
                }
                .run();
            });
        }
    });

    // Every worker is gone (normally: run complete; degraded: all dead).
    // Whatever is still incomplete is finished locally — the fleet-is-gone
    // degradation the config promises.
    let mut inner = shared.inner.lock().unwrap();
    if let Some(e) = inner.terminal.take() {
        return Err(e);
    }
    let leftover: Vec<usize> = (0..items.len())
        .filter(|&idx| inner.results[idx].is_none())
        .collect();
    if !leftover.is_empty() {
        if !config.local_fallback {
            return Err(ServiceError::Transport {
                reason: format!(
                    "{} work items unfinished after every shard worker died",
                    leftover.len()
                ),
            });
        }
        inner.stats.local_fallbacks += leftover.len() as u64;
        drop(inner);
        for idx in leftover {
            execute_local(&shared, idx, options);
        }
        inner = shared.inner.lock().unwrap();
        if let Some(e) = inner.terminal.take() {
            return Err(e);
        }
    }

    let stats = inner.stats;
    let mut components: Vec<KVertexConnectedComponent> = Vec::new();
    for slot in inner.results.iter_mut() {
        components.extend(slot.take().expect("all items completed"));
    }
    components.sort();
    Ok(FleetOutcome { components, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::transport::{run_shard_worker, LoopbackTransport};
    use kvcc_graph::CsrGraph;

    fn items_n(n: u32) -> Vec<CsrWorkItem> {
        // Independent triangles-with-a-shared-vertex items, disjoint
        // original id ranges.
        (0..n)
            .map(|i| {
                let graph =
                    CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                        .unwrap();
                CsrWorkItem::new(graph, (0..5).map(|v| 100 * i + v).collect())
            })
            .collect()
    }

    fn items() -> Vec<CsrWorkItem> {
        items_n(2)
    }

    fn expected_from(items: &[CsrWorkItem]) -> Vec<KVertexConnectedComponent> {
        let mut all: Vec<KVertexConnectedComponent> = items
            .iter()
            .flat_map(|item| run_work_item(item, 2, &KvccOptions::default()).unwrap())
            .collect();
        all.sort();
        all
    }

    fn expected() -> Vec<KVertexConnectedComponent> {
        expected_from(&items())
    }

    #[test]
    fn healthy_fleet_completes_without_any_failure_handling() {
        let fleet = items();
        let (client, server) = LoopbackTransport::pair();
        let worker =
            std::thread::spawn(move || run_shard_worker(&server, &KvccOptions::default()).unwrap());
        let outcome = run_fleet(
            &fleet,
            2,
            &[&client],
            &KvccOptions::default(),
            &CoordinatorConfig::default(),
        )
        .unwrap();
        drop(client);
        assert_eq!(worker.join().unwrap(), 2);
        assert_eq!(outcome.components, expected());
        assert_eq!(
            outcome.stats,
            FleetStats {
                items_total: 2,
                ..FleetStats::default()
            },
            "a clean run must not record any failure handling"
        );
    }

    #[test]
    fn empty_fleet_degrades_to_local_execution() {
        let fleet = items();
        let outcome = run_fleet(
            &fleet,
            2,
            &[],
            &KvccOptions::default(),
            &CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.components, expected());
        assert_eq!(outcome.stats.local_fallbacks, 2);

        let strict = CoordinatorConfig {
            local_fallback: false,
            ..CoordinatorConfig::default()
        };
        assert!(run_fleet(&fleet, 2, &[], &KvccOptions::default(), &strict).is_err());
    }

    #[test]
    fn dead_worker_items_requeue_and_finish_locally() {
        let fleet = items();
        // The "worker" hangs up immediately: every send fails Closed.
        let (client, server) = LoopbackTransport::pair();
        drop(server);
        let outcome = run_fleet(
            &fleet,
            2,
            &[&client],
            &KvccOptions::default(),
            &CoordinatorConfig {
                item_timeout: Duration::from_millis(50),
                ..CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.components, expected());
        assert_eq!(outcome.stats.worker_deaths, 1);
        assert_eq!(outcome.stats.local_fallbacks, 2);
    }

    /// A transport whose first send succeeds and every later one fails
    /// fatally; receives always time out. Forces the fatal-mid-batch path.
    struct DiesOnSecondSend {
        sends: std::sync::atomic::AtomicU32,
    }

    impl Transport for DiesOnSecondSend {
        fn send(&self, _frame: &[u8]) -> Result<(), TransportError> {
            if self
                .sends
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                == 0
            {
                Ok(())
            } else {
                Err(TransportError::Closed)
            }
        }

        fn recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
            Ok(None)
        }

        fn recv_timeout(&self, _timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
            Err(TransportError::TimedOut)
        }
    }

    #[test]
    fn exhausted_item_does_not_drop_the_batch_built_before_it() {
        // Planning dequeues a fresh item, then hits a retry-exhausted one.
        // The Step::Local return must put the already-dequeued fresh item
        // back on the queue, or its result slot never fills and the run
        // hangs.
        let fleet = items();
        let config = CoordinatorConfig::default();
        let now = Instant::now();
        let shared = Shared {
            items: &fleet,
            k: 2,
            inner: Mutex::new(Inner {
                queue: VecDeque::from([
                    Pending {
                        idx: 0,
                        attempts: 0,
                        not_before: now,
                    },
                    Pending {
                        idx: 1,
                        attempts: config.max_attempts,
                        not_before: now,
                    },
                ]),
                results: vec![None; fleet.len()],
                completed: 0,
                terminal: None,
                next_request_id: 1,
                stats: FleetStats::default(),
            }),
            ready: Condvar::new(),
        };
        let transport = DiesOnSecondSend {
            sends: std::sync::atomic::AtomicU32::new(0),
        };
        let options = KvccOptions::default();
        let mut worker = WorkerState {
            shared: &shared,
            transport: &transport,
            config: &config,
            options: &options,
            in_flight: VecDeque::new(),
            consecutive_failures: 0,
            quarantined: false,
            probe_round: 0,
            probe_at: now,
        };
        match worker.next_step() {
            Step::Local(pending) => assert_eq!(pending.idx, 1, "the exhausted item runs locally"),
            _ => panic!("expected the exhausted item to degrade to local execution"),
        }
        let inner = shared.inner.lock().unwrap();
        assert_eq!(
            inner.queue.iter().map(|p| p.idx).collect::<Vec<_>>(),
            vec![0],
            "the batch entry dequeued before the exhausted item must return to the queue"
        );
    }

    #[test]
    fn fatal_send_mid_batch_requeues_the_unsent_remainder() {
        // Three items go out as one batch; the transport dies on the second
        // send. The first (in flight) and second (being sent) are requeued
        // by die()/send_one — the third must be requeued too, not dropped.
        let fleet = items_n(3);
        let transport = DiesOnSecondSend {
            sends: std::sync::atomic::AtomicU32::new(0),
        };
        let outcome = run_fleet(
            &fleet,
            2,
            &[&transport],
            &KvccOptions::default(),
            &CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.components, expected_from(&fleet));
        assert_eq!(outcome.stats.worker_deaths, 1);
        assert_eq!(
            outcome.stats.requeues, 3,
            "in-flight item + failed send + unsent remainder must all requeue"
        );
        assert_eq!(outcome.stats.local_fallbacks, 3);
    }

    #[test]
    fn no_items_is_a_clean_empty_run() {
        let outcome = run_fleet(
            &[],
            3,
            &[],
            &KvccOptions::default(),
            &CoordinatorConfig::default(),
        )
        .unwrap();
        assert!(outcome.components.is_empty());
        assert_eq!(outcome.stats, FleetStats::default());
    }
}
