//! Query-serving QoS (protocol v6): the epoch-keyed result cache,
//! single-flight coalescing of identical in-flight queries, and cost-model
//! admission control with overload shedding.
//!
//! The three parts cooperate inside [`crate::ServiceEngine`]'s single query
//! funnel, so every wire path — in-process calls, framed bytes, sockets —
//! observes identical semantics:
//!
//! * **[`ResultCache`]** — a bounded LRU keyed by `(graph, epoch,
//!   canonicalized query bytes)`. Responses are cached as decoded protocol
//!   values and re-encoded by the same deterministic codec as fresh
//!   executions, so a hit is byte-identical to a miss on every transport.
//!   Invalidation is free: an applied update batch advances the slot epoch
//!   embedded in the key, so entries from the previous epoch simply stop
//!   being addressable and age out of the LRU.
//! * **[`SingleFlight`]** — waiter registration for identical concurrent
//!   queries: the first caller of a key becomes the *leader* and executes;
//!   callers arriving while the leader runs block and receive a clone of
//!   the leader's response (error responses included — a failed execution
//!   propagates to every waiter). A leader that dies without publishing
//!   poisons the flight, waking waiters with an error instead of wedging
//!   them.
//! * **[`AdmissionController`]** — estimates a request's work with the
//!   PR 5 scheduling cost model (`split_cost = |E| + k·|V|`), converts it
//!   to predicted wall-clock via an online EWMA of observed
//!   nanoseconds-per-cost-unit, and sheds requests
//!   ([`ServiceError::Overloaded`](crate::ServiceError::Overloaded),
//!   retryable) that cannot meet their `deadline_hint_ms` — instead of
//!   burning a core to interrupt them late. Concurrency is capped by
//!   permits backed by a bounded wait queue with shed-on-full semantics.
//!
//! Everything here is off by default ([`QosConfig::default`] ==
//! [`QosConfig::disabled`]): the engine's pre-v6 behaviour — every request
//! executes, deadlines interrupt mid-run with code 5 — is unchanged until a
//! deployment opts in (e.g. [`QosConfig::serving`]).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::protocol::{GraphId, QosStats, QueryRequest, QueryResponse};
use crate::wire::message::encode_query;

/// Locks a mutex, recovering the data from a poisoned lock: the QoS
/// bookkeeping must stay usable after a worker panicked mid-query (the
/// counters are monotone telemetry, never invariants a panic can break).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning of the engine's QoS layer (see the module docs). The default is
/// fully disabled; [`QosConfig::serving`] is a reasonable starting point for
/// a query-serving deployment.
#[derive(Clone, Debug, Default)]
pub struct QosConfig {
    /// Maximum entries in the result cache; `0` disables caching.
    pub cache_max_entries: usize,
    /// Byte budget of the result cache (estimated response payload bytes);
    /// `0` disables caching. A single response larger than the whole budget
    /// is served but never cached.
    pub cache_max_bytes: usize,
    /// Coalesce identical in-flight queries through [`SingleFlight`].
    pub coalesce: bool,
    /// Admission control; `None` admits everything (pre-v6 behaviour).
    pub admission: Option<AdmissionConfig>,
}

impl QosConfig {
    /// Everything off — the engine behaves exactly as before protocol v6.
    pub fn disabled() -> Self {
        QosConfig::default()
    }

    /// Cache + coalescing on with moderate budgets, admission off. Admission
    /// stays opt-in because it changes the deadline contract: an armed
    /// controller answers predicted-infeasible requests with `Overloaded`
    /// *before* execution, where the base engine would run them and
    /// interrupt mid-flight with `DeadlineExceeded`.
    pub fn serving() -> Self {
        QosConfig {
            cache_max_entries: 4096,
            cache_max_bytes: 64 << 20,
            coalesce: true,
            admission: None,
        }
    }

    /// Whether the result cache is armed.
    pub fn cache_enabled(&self) -> bool {
        self.cache_max_entries > 0 && self.cache_max_bytes > 0
    }
}

/// Tuning of the [`AdmissionController`].
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Requests allowed to execute concurrently through the controller.
    pub max_concurrent: usize,
    /// Requests allowed to wait for a permit beyond `max_concurrent`;
    /// arrivals past this bound are shed immediately.
    pub max_queued: usize,
    /// EWMA smoothing factor in `(0, 1]` for the observed
    /// nanoseconds-per-cost-unit (higher adapts faster).
    pub ewma_alpha: f64,
    /// Prior nanoseconds-per-cost-unit before the first observation. `0.0`
    /// starts optimistic: nothing is predicted infeasible until real
    /// executions have been measured.
    pub initial_ns_per_cost: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queued: 64,
            ewma_alpha: 0.2,
            initial_ns_per_cost: 0.0,
        }
    }
}

/// The result-cache / single-flight key: a graph handle, the slot's
/// mutation epoch at lookup time, and the query's canonical wire encoding.
///
/// Keying on the wire bytes makes two requests collide exactly when they
/// decode to the same query; symmetric vertex pairs
/// ([`QueryRequest::MaxConnectivity`], [`QueryRequest::LocalConnectivity`])
/// are canonicalized to `u <= v` first, so `κ(u, v)` and `κ(v, u)` share
/// one entry. The epoch is what makes invalidation free — an update batch
/// bumps it, and every pre-update entry becomes unaddressable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Target graph handle.
    pub graph: GraphId,
    /// Mutation epoch of the slot the lookup resolved.
    pub epoch: u64,
    /// Canonical wire encoding of the query.
    pub query: Vec<u8>,
}

impl CacheKey {
    /// Builds the key for a query against a slot at `epoch`.
    pub fn new(query: &QueryRequest, epoch: u64) -> Self {
        let canonical = canonicalize(query);
        let mut bytes = Vec::with_capacity(16);
        encode_query(canonical.as_ref().unwrap_or(query), &mut bytes);
        CacheKey {
            graph: query.graph(),
            epoch,
            query: bytes,
        }
    }
}

/// The canonical form of a query whose answer is symmetric in a vertex
/// pair, or `None` when the query is already canonical.
fn canonicalize(query: &QueryRequest) -> Option<QueryRequest> {
    match *query {
        QueryRequest::MaxConnectivity { graph, u, v } if u > v => {
            Some(QueryRequest::MaxConnectivity { graph, u: v, v: u })
        }
        QueryRequest::LocalConnectivity { graph, u, v, limit } if u > v => {
            Some(QueryRequest::LocalConnectivity {
                graph,
                u: v,
                v: u,
                limit,
            })
        }
        _ => None,
    }
}

/// Whether a query's successful answer is a deterministic function of
/// `(graph, epoch, query)` and may be cached / coalesced.
/// [`QueryRequest::GraphStats`] is excluded: its scheduling and QoS
/// counters move with every request.
pub fn cacheable(query: &QueryRequest) -> bool {
    !matches!(query, QueryRequest::GraphStats { .. })
}

/// Estimated payload bytes of a response for the cache's byte budget: the
/// dominant id lists at wire width plus small per-value overheads. An
/// estimate, not an exact encoding — the budget bounds memory, it does not
/// meter it.
pub fn response_weight(response: &QueryResponse) -> usize {
    match response {
        QueryResponse::Components(components) => {
            16 + components.iter().map(|c| 16 + 4 * c.len()).sum::<usize>()
        }
        QueryResponse::Connectivity(_) => 8,
        QueryResponse::Cut(cut) => match cut {
            None => 8,
            Some(vertices) => 16 + 4 * vertices.len(),
        },
        QueryResponse::Page {
            entries,
            next_cursor,
        } => {
            16 + entries
                .iter()
                .map(|e| 24 + 4 * e.component.len())
                .sum::<usize>()
                + next_cursor.as_ref().map_or(0, |c| c.len())
        }
        // Never cached; weighed only so the function is total.
        QueryResponse::Stats { .. }
        | QueryResponse::Updated { .. }
        | QueryResponse::Error(_)
        | QueryResponse::Loaded { .. }
        | QueryResponse::HandshakeOk => 64,
    }
}

struct CacheEntry<V> {
    value: V,
    weight: usize,
    stamp: u64,
}

struct CacheInner<K, V> {
    map: HashMap<K, CacheEntry<V>>,
    /// Recency order: stamp → key, oldest first. Stamps are unique (the
    /// clock only moves forward), so this is an exact LRU list with
    /// `O(log n)` touch/evict.
    lru: BTreeMap<u64, K>,
    clock: u64,
    bytes: usize,
}

/// A bounded LRU cache with an entry count *and* a byte budget.
///
/// [`ResultCache::get`] counts hits; misses are counted by the caller via
/// [`ResultCache::count_miss`] at the point a lookup failure actually turns
/// into an execution. The split keeps `misses == real executions` exact
/// under coalescing: concurrent callers may all miss the lookup, but only
/// the single-flight leader executes and records the miss.
pub struct ResultCache<K, V> {
    max_entries: usize,
    max_bytes: usize,
    inner: Mutex<CacheInner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ResultCache<K, V> {
    /// An empty cache with the given budgets. Either budget at `0` makes
    /// the cache inert (every `get` misses, every `insert` is dropped).
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        ResultCache {
            max_entries,
            max_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                clock: 0,
                bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a key up, refreshing its recency and counting a hit on
    /// success. A failed lookup counts nothing — see
    /// [`ResultCache::count_miss`].
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = lock_recover(&self.inner);
        let inner = &mut *inner;
        let entry = inner.map.get_mut(key)?;
        inner.lru.remove(&entry.stamp);
        inner.clock += 1;
        entry.stamp = inner.clock;
        inner.lru.insert(entry.stamp, key.clone());
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Records that a lookup failure became a real execution.
    pub fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts a value of the given weight, evicting least-recently-used
    /// entries until both budgets hold. A value heavier than the whole byte
    /// budget is silently not cached.
    pub fn insert(&self, key: K, value: V, weight: usize) {
        if self.max_entries == 0 || weight > self.max_bytes {
            return;
        }
        let mut inner = lock_recover(&self.inner);
        if let Some(old) = inner.map.remove(&key) {
            inner.lru.remove(&old.stamp);
            inner.bytes -= old.weight;
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.bytes += weight;
        inner.lru.insert(stamp, key.clone());
        inner.map.insert(
            key,
            CacheEntry {
                value,
                weight,
                stamp,
            },
        );
        while inner.map.len() > self.max_entries || inner.bytes > self.max_bytes {
            let Some((_, victim)) = inner.lru.pop_first() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.bytes -= evicted.weight;
            }
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).map.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes held.
    pub fn bytes(&self) -> usize {
        lock_recover(&self.inner).bytes
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup failures that became executions ([`ResultCache::count_miss`]).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Why a coalesced waiter received no value: the leader died (panicked or
/// was torn down) without publishing a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Poisoned;

enum FlightState<V> {
    Pending { waiters: usize },
    Done(Result<V, Poisoned>),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// The two ways out of [`SingleFlight::join`].
pub enum FlightOutcome<'a, K: Hash + Eq + Clone, V: Clone> {
    /// This caller owns the execution: run the work, then
    /// [`FlightLeader::publish`] the result to everyone else.
    Leader(FlightLeader<'a, K, V>),
    /// An identical execution was already in flight; this is (a clone of)
    /// its published result, or [`Poisoned`] if the leader died first.
    Coalesced(Result<V, Poisoned>),
}

/// The leader's obligation token: publish a value, or poison the flight on
/// drop so waiters are never wedged by a leader that died mid-execution.
pub struct FlightLeader<'a, K: Hash + Eq + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> FlightLeader<'_, K, V> {
    /// Publishes the execution's result (success *or* error value — waiters
    /// receive whatever the leader produced) and retires the flight: later
    /// callers of the key start fresh.
    pub fn publish(mut self, value: V) {
        self.finish(Ok(value));
    }

    fn finish(&mut self, result: Result<V, Poisoned>) {
        if self.published {
            return;
        }
        self.published = true;
        // Retire the key first so a caller arriving after publication
        // starts a fresh flight instead of reading a completed one, then
        // wake the registered waiters.
        lock_recover(&self.owner.inner).remove(&self.key);
        *lock_recover(&self.flight.state) = FlightState::Done(result);
        self.flight.cv.notify_all();
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for FlightLeader<'_, K, V> {
    fn drop(&mut self) {
        // A leader dropped without publishing poisons the flight — this is
        // what runs during a panic unwind and keeps waiters from wedging.
        self.finish(Err(Poisoned));
    }
}

/// Coalesces identical in-flight executions: for each key, one leader runs
/// and every concurrent caller waits for its published result.
pub struct SingleFlight<K, V> {
    inner: Mutex<HashMap<K, Arc<Flight<V>>>>,
    coalesced: AtomicU64,
}

impl<K, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight {
            inner: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty flight table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// everyone else blocks until the leader publishes (or poisons) and
    /// returns the shared result.
    pub fn join(&self, key: &K) -> FlightOutcome<'_, K, V> {
        let flight = {
            let mut inner = lock_recover(&self.inner);
            match inner.get(key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending { waiters: 0 }),
                        cv: Condvar::new(),
                    });
                    inner.insert(key.clone(), Arc::clone(&flight));
                    return FlightOutcome::Leader(FlightLeader {
                        owner: self,
                        key: key.clone(),
                        flight,
                        published: false,
                    });
                }
            }
        };
        let mut state = lock_recover(&flight.state);
        if let FlightState::Pending { waiters } = &mut *state {
            *waiters += 1;
        }
        loop {
            match &*state {
                FlightState::Done(result) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return FlightOutcome::Coalesced(result.clone());
                }
                FlightState::Pending { .. } => {
                    state = flight
                        .cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Callers registered and waiting on `key`'s in-flight execution right
    /// now (0 when no flight is pending). Exposed so tests and operators
    /// can observe registration without racing publication.
    pub fn waiters(&self, key: &K) -> usize {
        let flight = match lock_recover(&self.inner).get(key) {
            Some(flight) => Arc::clone(flight),
            None => return 0,
        };
        let waiting = match &*lock_recover(&flight.state) {
            FlightState::Pending { waiters } => *waiters,
            FlightState::Done(_) => 0,
        };
        waiting
    }

    /// Total callers that received a coalesced (non-leader) result.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// The admission verdict when a request is not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shed {
    /// Predicted wall-clock exceeds the request's remaining deadline under
    /// the current cost model.
    DeadlineInfeasible,
    /// The bounded admission queue is full (or the deadline expired while
    /// queued).
    QueueFull,
}

struct AdmissionState {
    active: usize,
    queued: usize,
}

/// Cost-model admission control: permits + a bounded wait queue + an online
/// EWMA translating [`kvcc::split_cost`] units into predicted nanoseconds.
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
    cv: Condvar,
    /// `f64` bits of the EWMA'd nanoseconds-per-cost-unit; `0.0` = untrained.
    ns_per_cost_bits: AtomicU64,
    shed: AtomicU64,
}

/// A granted execution slot; dropping it releases the permit and wakes one
/// queued waiter.
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.controller.state);
        state.active -= 1;
        drop(state);
        self.controller.cv.notify_one();
    }
}

impl AdmissionController {
    /// A controller with the given tuning.
    pub fn new(config: AdmissionConfig) -> Self {
        let prior = config.initial_ns_per_cost.max(0.0);
        AdmissionController {
            config,
            state: Mutex::new(AdmissionState {
                active: 0,
                queued: 0,
            }),
            cv: Condvar::new(),
            ns_per_cost_bits: AtomicU64::new(prior.to_bits()),
            shed: AtomicU64::new(0),
        }
    }

    /// The current EWMA'd nanoseconds-per-cost-unit (`0.0` untrained).
    pub fn ns_per_cost(&self) -> f64 {
        f64::from_bits(self.ns_per_cost_bits.load(Ordering::Relaxed))
    }

    /// Predicted wall-clock of a request costing `cost` units.
    pub fn predicted(&self, cost: u64) -> Duration {
        Duration::from_nanos((cost as f64 * self.ns_per_cost()) as u64)
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests currently parked in the wait queue.
    pub fn queue_depth(&self) -> u64 {
        lock_recover(&self.state).queued as u64
    }

    fn shed_with(&self, reason: Shed) -> Result<AdmissionPermit<'_>, Shed> {
        self.shed.fetch_add(1, Ordering::Relaxed);
        Err(reason)
    }

    /// Requests a permit for a `cost`-unit execution due by `deadline`.
    ///
    /// Sheds immediately when the cost model predicts the work cannot
    /// finish before the deadline, or when the wait queue is full; blocks
    /// (up to the deadline) while the queue has room but all permits are
    /// taken. `Ok` grants a permit released on drop.
    pub fn admit(&self, cost: u64, deadline: Option<Instant>) -> Result<AdmissionPermit<'_>, Shed> {
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if self.predicted(cost) > remaining {
                return self.shed_with(Shed::DeadlineInfeasible);
            }
        }
        let mut state = lock_recover(&self.state);
        if state.active < self.config.max_concurrent {
            state.active += 1;
            return Ok(AdmissionPermit { controller: self });
        }
        if state.queued >= self.config.max_queued {
            drop(state);
            return self.shed_with(Shed::QueueFull);
        }
        state.queued += 1;
        loop {
            if state.active < self.config.max_concurrent {
                state.queued -= 1;
                state.active += 1;
                return Ok(AdmissionPermit { controller: self });
            }
            match deadline {
                None => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        // The deadline lapsed while queued: the request can
                        // no longer be served in time, so it is shed (the
                        // retryable verdict — the queue, not the request,
                        // was the problem).
                        state.queued -= 1;
                        drop(state);
                        return self.shed_with(Shed::QueueFull);
                    }
                    state = self
                        .cv
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Feeds one observed execution back into the cost model.
    pub fn observe(&self, cost: u64, elapsed: Duration) {
        let sample = elapsed.as_nanos() as f64 / cost.max(1) as f64;
        let alpha = self.config.ewma_alpha.clamp(f64::EPSILON, 1.0);
        loop {
            let current_bits = self.ns_per_cost_bits.load(Ordering::Relaxed);
            let current = f64::from_bits(current_bits);
            let next = if current == 0.0 {
                sample
            } else {
                alpha * sample + (1.0 - alpha) * current
            };
            if self
                .ns_per_cost_bits
                .compare_exchange(
                    current_bits,
                    next.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
    }
}

/// The engine's assembled QoS layer: one cache, one flight table, an
/// optional admission controller, and the configuration that armed them.
pub(crate) struct QosLayer {
    pub(crate) config: QosConfig,
    pub(crate) cache: ResultCache<CacheKey, QueryResponse>,
    pub(crate) flight: SingleFlight<CacheKey, QueryResponse>,
    pub(crate) admission: Option<AdmissionController>,
}

impl QosLayer {
    pub(crate) fn new(config: QosConfig) -> Self {
        let cache = ResultCache::new(config.cache_max_entries, config.cache_max_bytes);
        let admission = config.admission.clone().map(AdmissionController::new);
        QosLayer {
            config,
            cache,
            flight: SingleFlight::new(),
            admission,
        }
    }

    /// The engine-wide counters reported in `Stats` responses.
    pub(crate) fn snapshot(&self) -> QosStats {
        QosStats {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            coalesced: self.flight.coalesced(),
            shed: self.admission.as_ref().map_or(0, |a| a.shed_count()),
            queue_depth: self.admission.as_ref().map_or(0, |a| a.queue_depth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn cache_counts_hits_evicts_lru_and_respects_both_budgets() {
        let cache: ResultCache<u32, String> = ResultCache::new(2, 100);
        assert_eq!(cache.get(&1), None);
        cache.count_miss();
        cache.insert(1, "one".into(), 10);
        cache.insert(2, "two".into(), 10);
        assert_eq!(cache.get(&1), Some("one".into())); // 1 is now most recent
        cache.insert(3, "three".into(), 10); // entry budget evicts LRU = 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some("one".into()));
        assert_eq!(cache.get(&3), Some("three".into()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 20);
        assert_eq!((cache.hits(), cache.misses()), (3, 1));

        // Byte budget: an 95-weight entry forces everything else out.
        cache.insert(4, "big".into(), 95);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&4), Some("big".into()));
        // Heavier than the whole budget: served but never cached.
        cache.insert(5, "huge".into(), 101);
        assert_eq!(cache.get(&5), None);
        // Re-inserting a key replaces its weight instead of double counting.
        cache.insert(4, "big2".into(), 50);
        assert_eq!(cache.bytes(), 50);
        assert_eq!(cache.get(&4), Some("big2".into()));
    }

    #[test]
    fn cache_with_zero_budget_is_inert() {
        let none: ResultCache<u32, u32> = ResultCache::new(0, 100);
        none.insert(1, 1, 1);
        assert_eq!(none.get(&1), None);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn single_flight_coalesces_waiters_onto_the_leader() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let FlightOutcome::Leader(leader) = flight.join(&7) else {
            panic!("first caller must lead");
        };
        let waiters = 4;
        std::thread::scope(|scope| {
            let flight = &flight;
            let handles: Vec<_> = (0..waiters)
                .map(|_| {
                    scope.spawn(move || match flight.join(&7) {
                        FlightOutcome::Coalesced(result) => result,
                        FlightOutcome::Leader(_) => panic!("the key is already led"),
                    })
                })
                .collect();
            // Wait (by progress, not by time) until every waiter is
            // registered on the flight, then publish once.
            while flight.waiters(&7) < waiters {
                std::thread::yield_now();
            }
            leader.publish(42);
            for handle in handles {
                assert_eq!(handle.join().unwrap(), Ok(42));
            }
        });
        assert_eq!(flight.coalesced(), waiters as u64);
        // The flight retired with publication: the next caller leads anew.
        assert!(matches!(flight.join(&7), FlightOutcome::Leader(_)));
    }

    #[test]
    fn a_dead_leader_poisons_waiters_instead_of_wedging_them() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let leader = match flight.join(&1) {
            FlightOutcome::Leader(leader) => leader,
            FlightOutcome::Coalesced(_) => panic!("first caller must lead"),
        };
        std::thread::scope(|scope| {
            let flight = &flight;
            let waiter = scope.spawn(move || match flight.join(&1) {
                FlightOutcome::Coalesced(result) => result,
                FlightOutcome::Leader(_) => panic!("the key is already led"),
            });
            while flight.waiters(&1) < 1 {
                std::thread::yield_now();
            }
            drop(leader); // died without publishing
            assert_eq!(waiter.join().unwrap(), Err(Poisoned));
        });
        // Poisoning retires the flight too.
        assert!(matches!(flight.join(&1), FlightOutcome::Leader(_)));
    }

    #[test]
    fn admission_sheds_on_full_queue_and_releases_permits_on_drop() {
        let controller = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 0,
            ..AdmissionConfig::default()
        });
        let permit = controller.admit(1, None).expect("first caller admitted");
        assert_eq!(controller.admit(1, None).err(), Some(Shed::QueueFull));
        assert_eq!(controller.shed_count(), 1);
        drop(permit);
        let again = controller.admit(1, None).expect("permit was released");
        drop(again);
    }

    #[test]
    fn admission_queues_up_to_the_bound_then_sheds() {
        let controller = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 1,
            ..AdmissionConfig::default()
        });
        let permit = controller.admit(1, None).expect("admitted");
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let controller = &controller;
            let barrier = &barrier;
            let queued = scope.spawn(move || {
                barrier.wait();
                let permit = controller.admit(1, None).expect("queued then admitted");
                drop(permit);
            });
            barrier.wait();
            // Progress-wait until the spawned caller is parked in the queue,
            // then observe shed-on-full and release the permit.
            while controller.queue_depth() < 1 {
                std::thread::yield_now();
            }
            assert_eq!(controller.admit(1, None).err(), Some(Shed::QueueFull));
            drop(permit);
            queued.join().unwrap();
        });
        assert_eq!(controller.queue_depth(), 0);
        assert_eq!(controller.shed_count(), 1);
    }

    #[test]
    fn admission_sheds_deadline_infeasible_work_without_executing() {
        let controller = AdmissionController::new(AdmissionConfig {
            initial_ns_per_cost: 1e6, // a trained-slow model: 1ms per unit
            ..AdmissionConfig::default()
        });
        let deadline = Instant::now() + Duration::from_millis(10);
        // 1e6 units × 1e6 ns/unit = ~17 minutes predicted ≫ 10ms remaining.
        assert_eq!(
            controller.admit(1_000_000, Some(deadline)).err(),
            Some(Shed::DeadlineInfeasible)
        );
        assert_eq!(controller.shed_count(), 1);
        // The same cost with no deadline sails through.
        assert!(controller.admit(1_000_000, None).is_ok());
    }

    #[test]
    fn ewma_trains_from_observations() {
        let controller = AdmissionController::new(AdmissionConfig {
            ewma_alpha: 0.5,
            ..AdmissionConfig::default()
        });
        assert_eq!(controller.ns_per_cost(), 0.0);
        // First observation seeds the model outright.
        controller.observe(100, Duration::from_micros(100));
        assert_eq!(controller.ns_per_cost(), 1000.0);
        // Later observations blend by alpha.
        controller.observe(100, Duration::from_micros(300));
        assert_eq!(controller.ns_per_cost(), 2000.0);
        assert_eq!(controller.predicted(1000), Duration::from_micros(2000));
    }

    #[test]
    fn cache_keys_canonicalize_symmetric_pairs_and_embed_the_epoch() {
        let g = GraphId(3);
        let a = CacheKey::new(
            &QueryRequest::MaxConnectivity {
                graph: g,
                u: 5,
                v: 2,
            },
            1,
        );
        let b = CacheKey::new(
            &QueryRequest::MaxConnectivity {
                graph: g,
                u: 2,
                v: 5,
            },
            1,
        );
        assert_eq!(a, b);
        let c = CacheKey::new(
            &QueryRequest::MaxConnectivity {
                graph: g,
                u: 2,
                v: 5,
            },
            2,
        );
        assert_ne!(a, c, "an epoch bump must change the key");
        let d = CacheKey::new(
            &QueryRequest::LocalConnectivity {
                graph: g,
                u: 9,
                v: 1,
                limit: 4,
            },
            0,
        );
        let e = CacheKey::new(
            &QueryRequest::LocalConnectivity {
                graph: g,
                u: 1,
                v: 9,
                limit: 4,
            },
            0,
        );
        assert_eq!(d, e);
        // Asymmetric queries are untouched.
        let f1 = CacheKey::new(
            &QueryRequest::KvccsContaining {
                graph: g,
                seed: 4,
                k: 3,
            },
            0,
        );
        let f2 = CacheKey::new(
            &QueryRequest::KvccsContaining {
                graph: g,
                seed: 3,
                k: 4,
            },
            0,
        );
        assert_ne!(f1, f2);
    }

    #[test]
    fn graph_stats_is_never_cacheable() {
        assert!(!cacheable(&QueryRequest::GraphStats { graph: GraphId(0) }));
        assert!(cacheable(&QueryRequest::EnumerateKvccs {
            graph: GraphId(0),
            k: 2
        }));
    }
}
