//! Plain-data types of the versioned service protocol (v2).
//!
//! Requests and responses carry no references into engine state, so a
//! network transport only has to serialise these values; the engine itself
//! never leaks `Arc`s or graph internals through the protocol. Version 2
//! wraps every query in a [`Request`]/[`Response`] envelope (request id,
//! deadline hint), extends the vocabulary with ranked/paginated
//! [`QueryRequest::TopKComponents`] queries, a multi-graph batch form and
//! self-contained shard work items, and gives every error a stable numeric
//! code. The byte encoding lives in [`crate::wire::message`]; this module is
//! only the data model.

use std::time::{Duration, Instant};

use kvcc::index::RankBy;
use kvcc::{Budget, KVertexConnectedComponent, KvccError};
use kvcc_graph::codec::{varint, Reader};
use kvcc_graph::{EdgeUpdate, VertexId};

use crate::wire::CsrWorkItem;

/// Opaque handle of a graph loaded into a [`crate::ServiceEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u32);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph#{}", self.0)
    }
}

/// How an engine lays out hot graphs in memory.
///
/// Everything behind the protocol boundary may run in a relabelled id space
/// for cache locality; the engine translates incoming vertex ids on the way
/// in and result ids on the way out, so responses are **always** expressed in
/// the ids the graph was loaded with, whatever the policy. Orderings are
/// deterministic functions of the graph, so the same graph + policy always
/// produces the same internal space (which is what lets a persisted index be
/// restored across restarts, see [`crate::ServiceEngine::install_index_bytes`]).
///
/// The policy is part of the protocol (reported by
/// [`QueryResponse::Stats`]) so clients can tell which id space cursors and
/// persisted indexes belong to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Store graphs with the ids they were loaded with.
    #[default]
    Preserve,
    /// Relabel by non-ascending degree (hot rows share cache lines).
    DegreeDescending,
    /// Relabel in per-component BFS order (bandwidth reduction).
    Bfs,
    /// Per-component BFS seeded at each component's maximum-degree vertex.
    Hybrid,
}

impl OrderingPolicy {
    /// Stable wire code of the policy.
    pub const fn code(self) -> u8 {
        match self {
            OrderingPolicy::Preserve => 0,
            OrderingPolicy::DegreeDescending => 1,
            OrderingPolicy::Bfs => 2,
            OrderingPolicy::Hybrid => 3,
        }
    }

    /// Decodes a wire code produced by [`OrderingPolicy::code`].
    pub const fn from_code(code: u8) -> Option<OrderingPolicy> {
        match code {
            0 => Some(OrderingPolicy::Preserve),
            1 => Some(OrderingPolicy::DegreeDescending),
            2 => Some(OrderingPolicy::Bfs),
            3 => Some(OrderingPolicy::Hybrid),
            _ => None,
        }
    }
}

/// On-disk format of a [`RequestBody::LoadGraph`] path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadFormat {
    /// A SNAP-style text edge list, ingested through the streaming loader
    /// (`kvcc_graph::load::StreamingEdgeListLoader`).
    #[default]
    EdgeList,
    /// The aligned `KCSR` v3 binary format. When the engine's memory policy
    /// permits (no reordering, no compression) the file is served zero-copy
    /// from a borrowed slot (`StoredGraph::Borrowed`).
    Kcsr,
}

impl LoadFormat {
    /// Stable wire code of the format.
    pub const fn code(self) -> u8 {
        match self {
            LoadFormat::EdgeList => 0,
            LoadFormat::Kcsr => 1,
        }
    }

    /// Decodes a wire code produced by [`LoadFormat::code`].
    pub const fn from_code(code: u8) -> Option<LoadFormat> {
        match code {
            0 => Some(LoadFormat::EdgeList),
            1 => Some(LoadFormat::Kcsr),
            _ => None,
        }
    }
}

/// One query against a loaded graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// All k-VCCs of the graph (answered from the index when one is built,
    /// otherwise a full enumeration).
    EnumerateKvccs {
        /// Target graph.
        graph: GraphId,
        /// Connectivity parameter.
        k: u32,
    },
    /// The k-VCCs containing `seed` — the §6.4 case-study query. Served by an
    /// ancestor walk in the [`kvcc::ConnectivityIndex`].
    KvccsContaining {
        /// Target graph.
        graph: GraphId,
        /// The seed vertex.
        seed: VertexId,
        /// Connectivity parameter.
        k: u32,
    },
    /// The largest `k` such that `u` and `v` share a k-VCC (lowest common
    /// ancestor in the index forest).
    MaxConnectivity {
        /// Target graph.
        graph: GraphId,
        /// First vertex.
        u: VertexId,
        /// Second vertex.
        v: VertexId,
    },
    /// The vertex connectivity number of `v` (largest `k` with a k-VCC
    /// containing it).
    VertexConnectivityNumber {
        /// Target graph.
        graph: GraphId,
        /// The vertex.
        v: VertexId,
    },
    /// A raw `GLOBAL-CUT` probe: a vertex cut of size `< k`, or `None` when
    /// the graph is k-vertex connected. Runs on the worker's
    /// [`kvcc::global_cut::CutScratch`] arena.
    GlobalCutProbe {
        /// Target graph.
        graph: GraphId,
        /// Connectivity parameter.
        k: u32,
    },
    /// Exact local vertex connectivity `κ(u, v)` capped at `limit`, answered
    /// on the worker's flow arena.
    LocalConnectivity {
        /// Target graph.
        graph: GraphId,
        /// First vertex.
        u: VertexId,
        /// Second vertex.
        v: VertexId,
        /// Early-termination cap (the answer saturates here).
        limit: u32,
    },
    /// Basic statistics of a loaded graph (cheap health/debug query).
    GraphStats {
        /// Target graph.
        graph: GraphId,
    },
    /// The top-ranked components of the whole index forest, paginated.
    ///
    /// Ranking is a sort over metadata the index precomputed at build time
    /// ([`kvcc::ConnectivityIndex::ranked_components`]); the first page is
    /// requested with `cursor: None` and every [`QueryResponse::Page`]
    /// carries the opaque cursor resuming after it. Walking pages until the
    /// cursor runs out yields **every** component of the forest exactly
    /// once. Cursors are only valid against the same engine, graph and
    /// `rank_by`; anything else is rejected with
    /// [`ServiceError::InvalidCursor`].
    TopKComponents {
        /// Target graph.
        graph: GraphId,
        /// Ranking key.
        rank_by: RankBy,
        /// Maximum entries per page (must be at least 1).
        page_size: u32,
        /// Resumption cursor from the previous page, `None` for the first.
        cursor: Option<Vec<u8>>,
    },
}

impl QueryRequest {
    /// The graph the request addresses.
    pub fn graph(&self) -> GraphId {
        match *self {
            QueryRequest::EnumerateKvccs { graph, .. }
            | QueryRequest::KvccsContaining { graph, .. }
            | QueryRequest::MaxConnectivity { graph, .. }
            | QueryRequest::VertexConnectivityNumber { graph, .. }
            | QueryRequest::GlobalCutProbe { graph, .. }
            | QueryRequest::LocalConnectivity { graph, .. }
            | QueryRequest::GraphStats { graph }
            | QueryRequest::TopKComponents { graph, .. } => graph,
        }
    }

    /// Whether answering needs the [`kvcc::ConnectivityIndex`] (and should
    /// trigger its lazy construction). [`QueryRequest::EnumerateKvccs`] is
    /// excluded: it *uses* an existing index but a single enumeration is
    /// cheaper than building the whole hierarchy.
    pub fn needs_index(&self) -> bool {
        matches!(
            self,
            QueryRequest::KvccsContaining { .. }
                | QueryRequest::MaxConnectivity { .. }
                | QueryRequest::VertexConnectivityNumber { .. }
                | QueryRequest::TopKComponents { .. }
        )
    }
}

/// One entry of a [`QueryResponse::Page`]: a component plus the metadata it
/// was ranked on, expressed in loaded vertex ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankedEntry {
    /// Connectivity level of the component.
    pub k: u32,
    /// Number of graph edges with both endpoints inside the component.
    pub internal_edges: u64,
    /// The component members.
    pub component: KVertexConnectedComponent,
}

impl RankedEntry {
    /// Number of members.
    pub fn size(&self) -> u32 {
        self.component.len() as u32
    }

    /// Internal edges over possible edges (`0.0` below two members); the
    /// same formula the index ranks with ([`kvcc::index::density_of`]).
    pub fn density(&self) -> f64 {
        kvcc::index::density_of(self.internal_edges, self.component.len())
    }
}

/// Magic bytes opening every serialised page cursor.
const CURSOR_MAGIC: [u8; 4] = *b"KCUR";
/// Version byte of the cursor format (tracks the protocol version).
/// Version 3 added the index mutation epoch to the fingerprint.
const CURSOR_VERSION: u8 = 3;

/// The decoded form of the opaque pagination cursor carried by
/// [`QueryRequest::TopKComponents`] and [`QueryResponse::Page`].
///
/// The cursor is self-contained — the engine keeps **no** per-client
/// pagination state. `graph`, `num_nodes` and `epoch` together fingerprint
/// the listing the cursor was issued against, so a cursor replayed against a
/// different graph handle, a different ranking, an index rebuilt with a
/// different depth cap, or a forest mutated by
/// [`RequestBody::ApplyUpdates`] since the page was minted is rejected
/// instead of silently skipping or repeating components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageCursor {
    /// The graph handle the cursor was issued for.
    pub graph: GraphId,
    /// The ranking the cursor belongs to.
    pub rank_by: RankBy,
    /// Number of entries already returned (resume point).
    pub offset: u64,
    /// Total node count of the index the cursor was issued against.
    pub num_nodes: u64,
    /// Mutation epoch of the index the cursor was issued against.
    pub epoch: u64,
}

impl PageCursor {
    /// Serialises the cursor (magic, version, rank code, then graph id,
    /// offset, node-count and epoch varints).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 1 + 5 + 10 + 10 + 10);
        out.extend_from_slice(&CURSOR_MAGIC);
        out.push(CURSOR_VERSION);
        out.push(self.rank_by.code());
        varint::encode_u32(self.graph.0, &mut out);
        varint::encode_u64(self.offset, &mut out);
        varint::encode_u64(self.num_nodes, &mut out);
        varint::encode_u64(self.epoch, &mut out);
        out
    }

    /// Deserialises a cursor, reporting *why* a hostile or stale buffer was
    /// rejected (the reason is surfaced through
    /// [`ServiceError::InvalidCursor`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, &'static str> {
        let mut r = Reader::new(bytes);
        if r.take(4).map(|m| m != CURSOR_MAGIC).unwrap_or(true) {
            return Err("not a page cursor");
        }
        if r.u8() != Some(CURSOR_VERSION) {
            return Err("unsupported cursor version");
        }
        let rank_by = r
            .u8()
            .and_then(RankBy::from_code)
            .ok_or("unknown ranking key")?;
        let graph = GraphId(r.varint_u32().ok_or("cursor graph id truncated")?);
        let offset = r.varint_u64().ok_or("cursor offset truncated")?;
        let num_nodes = r.varint_u64().ok_or("cursor fingerprint truncated")?;
        let epoch = r.varint_u64().ok_or("cursor epoch truncated")?;
        r.finish().ok_or("trailing bytes after the cursor")?;
        Ok(PageCursor {
            graph,
            rank_by,
            offset,
            num_nodes,
            epoch,
        })
    }
}

/// Cumulative scheduling counters of one loaded graph, accumulated over the
/// direct (non-index-served) enumerations the engine ran against it and
/// reported by [`QueryResponse::Stats`].
///
/// `work_items` and `splits` are deterministic functions of the workload and
/// the engine's enumeration options; `steals` is genuinely
/// scheduling-dependent (it varies run to run and across thread counts) and
/// exists for observability, never for parity comparison. `cancelled_runs`
/// counts enumerations interrupted mid-run by a request deadline.
///
/// The fleet counters (`retries` through `local_fallbacks`, the protocol-v4
/// additions) accumulate over the slot's *sharded* enumerations
/// ([`crate::ServiceEngine::enumerate_sharded`]): they are the wire-visible
/// record of how much failure handling the coordinator had to do. Like
/// `steals` they depend on timing and the fault environment, never on the
/// answer — output stays byte-identical whatever these count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulingStats {
    /// Work items drained across all direct enumerations on the slot.
    pub work_items: u64,
    /// Work items taken from another worker's deque (work stealing).
    pub steals: u64,
    /// Components deferred by skew-aware splitting.
    pub splits: u64,
    /// Enumerations interrupted mid-run by a deadline or cancellation.
    pub cancelled_runs: u64,
    /// Sharded work items re-sent after a retryable failure (timeout,
    /// in-flight corruption, retryable peer error).
    pub retries: u64,
    /// Sharded work items pulled off a dead, quarantined or straggling
    /// worker and requeued onto the healthy fleet.
    pub requeues: u64,
    /// Workers quarantined after consecutive failures.
    pub quarantines: u64,
    /// Quarantined workers reinstated after a successful probe.
    pub reinstatements: u64,
    /// Sharded work items the coordinator completed by *local* execution —
    /// graceful degradation when the fleet was gone or an item exhausted
    /// its retry budget.
    pub local_fallbacks: u64,
    /// [`RequestBody::ApplyUpdates`] batches applied to the slot (the
    /// protocol-v5 mutation counters; equal to the slot's current epoch for
    /// a graph that was never reloaded).
    pub update_batches: u64,
    /// Edge updates carried by those batches (inserts + deletes, counting
    /// redundant ones).
    pub update_edges: u64,
    /// Update batches whose blast radius forced a full index rebuild
    /// instead of an incremental splice.
    pub update_rebuilds: u64,
    /// Delta-overlay compactions the engine ran on the slot after update
    /// batches (protocol v6): an uncompressed mutable slot keeps its edits
    /// in a [`kvcc_graph::DeltaGraph`] overlay and folds them into the base
    /// CSR only when the overlay ratio crosses
    /// [`crate::EngineConfig::compact_overlay_ratio`].
    pub compactions: u64,
}

/// Engine-wide query-QoS counters (protocol v6), reported by
/// [`QueryResponse::Stats`].
///
/// `cache_hits`/`cache_misses` are deterministic functions of the request
/// sequence (the cache key embeds the slot epoch, so invalidation is exact);
/// `coalesced`, `shed` and `queue_depth` depend on concurrency, load and
/// wall-clock timing and exist for observability, never for parity
/// comparison — like [`SchedulingStats::steals`], they never influence
/// response bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QosStats {
    /// Queries answered from the epoch-keyed result cache.
    pub cache_hits: u64,
    /// Cacheable queries that missed and executed (each miss is exactly one
    /// real execution when coalescing is on).
    pub cache_misses: u64,
    /// Queries that joined an identical in-flight execution and received
    /// the leader's response instead of executing (single-flight waiters).
    pub coalesced: u64,
    /// Requests rejected by admission control with
    /// [`ServiceError::Overloaded`] — predicted to miss their deadline
    /// hint, or arriving with the admission queue full.
    pub shed: u64,
    /// Requests currently parked in the bounded admission queue (a gauge,
    /// not a cumulative counter).
    pub queue_depth: u64,
}

/// The answer to one [`QueryRequest`], in the same batch position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResponse {
    /// A list of components (enumeration and containment queries).
    Components(Vec<KVertexConnectedComponent>),
    /// A connectivity value (max-connectivity and local-connectivity
    /// queries).
    Connectivity(u32),
    /// A vertex cut of size `< k`, or `None` when none exists.
    Cut(Option<Vec<VertexId>>),
    /// Graph statistics.
    Stats {
        /// Number of vertices.
        num_vertices: usize,
        /// Number of undirected edges.
        num_edges: usize,
        /// Whether the connectivity index has been built.
        indexed: bool,
        /// Deepest hierarchy level when indexed (0 otherwise).
        max_k: u32,
        /// Memory layout policy of the engine holding the graph.
        ordering: OrderingPolicy,
        /// The depth cap the index was built with (`None`: complete, or not
        /// yet built — check `indexed`). A `Some` value warns clients that
        /// enumeration/containment answers beyond the cap fall back to
        /// direct computation and connectivity values saturate there, so a
        /// depth-capped index is detectable instead of silently
        /// under-reporting.
        depth_limit: Option<u32>,
        /// Cumulative scheduling observability for this graph slot, so the
        /// runtime behaviour of the work-stealing enumerator is inspectable
        /// over the wire (see [`SchedulingStats`]).
        scheduling: SchedulingStats,
        /// Mutation epoch of the slot: 0 at load, +1 per applied
        /// [`RequestBody::ApplyUpdates`] batch. Page cursors embed it, and
        /// result caches can key on `(graph, epoch)`.
        epoch: u64,
        /// Engine-wide query-QoS counters (protocol v6; see [`QosStats`]).
        qos: QosStats,
    },
    /// A [`RequestBody::ApplyUpdates`] batch was applied (protocol v5).
    Updated {
        /// The slot's mutation epoch after the batch.
        epoch: u64,
        /// Forest nodes the incremental repair re-enumerated (the whole
        /// forest when `rebuilt`).
        repaired_nodes: u32,
        /// Whether the blast radius forced a full index rebuild.
        rebuilt: bool,
    },
    /// One page of a ranked component listing, with the cursor resuming
    /// after it (`None` on the final page).
    Page {
        /// The entries of this page, in ranking order.
        entries: Vec<RankedEntry>,
        /// Opaque cursor for the next page; `None` when exhausted.
        next_cursor: Option<Vec<u8>>,
    },
    /// The request failed; the batch keeps going for the other requests.
    Error(ServiceError),
    /// A [`RequestBody::LoadGraph`] succeeded: the handle of the new slot
    /// plus the ingestion diagnostics.
    Loaded {
        /// Handle of the freshly loaded graph.
        graph: GraphId,
        /// Number of vertices.
        num_vertices: u64,
        /// Number of undirected edges.
        num_edges: u64,
        /// Self-loop lines dropped during ingestion (always 0 for `KCSR`
        /// input, which is loop-free by construction).
        self_loops: u64,
        /// Duplicate edge occurrences dropped during ingestion.
        duplicates: u64,
        /// Whether the slot borrows the file bytes zero-copy
        /// (`StoredGraph::Borrowed`) rather than holding a decoded copy.
        zero_copy: bool,
    },
    /// A [`RequestBody::Handshake`] token was accepted (protocol v6); the
    /// connection may now issue ordinary requests.
    HandshakeOk,
}

/// Errors surfaced through [`QueryResponse::Error`] or the engine API.
///
/// Every variant carries a stable numeric [`code`](ServiceError::code) that
/// is part of the wire contract: clients branch on the code, the message
/// strings are for humans and may change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Code 1: the [`GraphId`] does not name a loaded graph.
    UnknownGraph {
        /// The offending handle.
        graph: GraphId,
    },
    /// Code 2: a vertex id is outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
    },
    /// Code 3: the underlying enumeration rejected the parameters or failed.
    Enumeration(String),
    /// Code 4: a pagination cursor was malformed, stale, or issued for a
    /// different ranking or index.
    InvalidCursor {
        /// Why the cursor was rejected.
        reason: String,
    },
    /// Code 5: the envelope's deadline hint expired before the work ran.
    DeadlineExceeded,
    /// Code 6: the endpoint does not serve this request shape (e.g. a
    /// shard worker receiving an engine query).
    Unsupported {
        /// What was requested.
        what: String,
    },
    /// Code 7: the request bytes did not decode as a protocol-v2 message.
    MalformedRequest {
        /// Decoder diagnostic.
        reason: String,
    },
    /// Code 8: a transport carrying the conversation failed mid-flight.
    Transport {
        /// Transport diagnostic.
        reason: String,
    },
    /// Code 9: a [`RequestBody::LoadGraph`] could not ingest its file
    /// (missing path, parse error, malformed or corrupted `KCSR` bytes).
    LoadFailed {
        /// Loader diagnostic.
        reason: String,
    },
    /// Code 10 (protocol v6): admission control shed the request — its
    /// estimated work cannot meet the envelope's `deadline_hint_ms` under
    /// the observed cost-per-unit, or the bounded admission queue was full.
    /// Retryable: the rejection reflects transient load, not the request.
    Overloaded,
    /// Code 11 (protocol v6): the endpoint requires a shared-secret
    /// handshake ([`RequestBody::Handshake`]) and the connection has not
    /// presented a matching token. Terminal — resending without the right
    /// secret cannot succeed.
    Unauthorized,
}

impl ServiceError {
    /// Whether retrying the *same* request can succeed — the single
    /// retryable-vs-terminal classification shared by the shard
    /// coordinator and the [`crate::wire::transport::call_with`] client
    /// path.
    ///
    /// Retryable: [`ServiceError::Transport`] (the carrier failed
    /// mid-flight), [`ServiceError::MalformedRequest`] (the peer
    /// received mangled bytes — the sender knows its own encoding was
    /// valid, so the corruption happened in flight and a resend is sound)
    /// and [`ServiceError::Overloaded`] (the shed reflects transient load;
    /// the same request can be admitted once the queue drains).
    /// Everything else is terminal: [`ServiceError::DeadlineExceeded`]
    /// will not un-expire, [`ServiceError::Unauthorized`] will not grow
    /// the right secret, and the semantic rejections (unknown graph,
    /// out-of-range vertex, invalid cursor, unsupported shape, failed
    /// load, enumeration error) reproduce identically on a resend.
    pub const fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Transport { .. }
                | ServiceError::MalformedRequest { .. }
                | ServiceError::Overloaded
        )
    }

    /// The stable numeric code of the error (wire contract; see the variant
    /// docs).
    pub const fn code(&self) -> u16 {
        match self {
            ServiceError::UnknownGraph { .. } => 1,
            ServiceError::VertexOutOfRange { .. } => 2,
            ServiceError::Enumeration(_) => 3,
            ServiceError::InvalidCursor { .. } => 4,
            ServiceError::DeadlineExceeded => 5,
            ServiceError::Unsupported { .. } => 6,
            ServiceError::MalformedRequest { .. } => 7,
            ServiceError::Transport { .. } => 8,
            ServiceError::LoadFailed { .. } => 9,
            ServiceError::Overloaded => 10,
            ServiceError::Unauthorized => 11,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[E{}] ", self.code())?;
        match self {
            ServiceError::UnknownGraph { graph } => {
                write!(f, "{graph} is not loaded")
            }
            ServiceError::VertexOutOfRange { vertex } => {
                write!(f, "vertex {vertex} is out of range")
            }
            ServiceError::Enumeration(message) => write!(f, "enumeration failed: {message}"),
            ServiceError::InvalidCursor { reason } => {
                write!(f, "invalid page cursor: {reason}")
            }
            ServiceError::DeadlineExceeded => write!(f, "deadline hint expired"),
            ServiceError::Unsupported { what } => {
                write!(f, "this endpoint does not serve: {what}")
            }
            ServiceError::MalformedRequest { reason } => {
                write!(f, "malformed request: {reason}")
            }
            ServiceError::Transport { reason } => write!(f, "transport failure: {reason}"),
            ServiceError::LoadFailed { reason } => {
                write!(f, "graph load failed: {reason}")
            }
            ServiceError::Overloaded => {
                write!(f, "admission control shed the request (overloaded)")
            }
            ServiceError::Unauthorized => {
                write!(f, "handshake token missing or mismatched")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<KvccError> for ServiceError {
    fn from(value: KvccError) -> Self {
        match value {
            KvccError::SeedOutOfRange { seed } => ServiceError::VertexOutOfRange { vertex: seed },
            // A budget interrupt is the deadline contract of the protocol:
            // stable code 5, not a free-text enumeration failure. The
            // partial statistics stay on the engine side (slot scheduling
            // counters); the wire error is deliberately payload-free.
            KvccError::Interrupted { .. } => ServiceError::DeadlineExceeded,
            other => ServiceError::Enumeration(other.to_string()),
        }
    }
}

/// The protocol-v2 request envelope: everything a server needs to route,
/// prioritise and answer one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the [`Response`] so
    /// requests may be answered out of order.
    pub request_id: u64,
    /// Soft deadline in milliseconds, measured from when the server starts
    /// processing the envelope. Work whose turn comes after the hint expired
    /// is answered with [`ServiceError::DeadlineExceeded`] instead of
    /// running; `None` means no deadline.
    pub deadline_hint_ms: Option<u32>,
    /// The actual work.
    pub body: RequestBody,
}

impl Request {
    /// Convenience constructor for an un-deadlined single query.
    pub fn query(request_id: u64, query: QueryRequest) -> Self {
        Request {
            request_id,
            deadline_hint_ms: None,
            body: RequestBody::Query(query),
        }
    }

    /// Arms the envelope's deadline as a cooperative [`Budget`], measured
    /// from *now* — call it when the server starts processing. Without a
    /// hint the budget is unlimited. This is the single definition of the
    /// hint→budget conversion, shared by the engine and the shard worker.
    pub fn budget(&self) -> Budget {
        match self.deadline_hint_ms {
            Some(ms) => Budget::with_deadline(Instant::now() + Duration::from_millis(ms as u64)),
            None => Budget::unlimited(),
        }
    }
}

/// The payload of a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestBody {
    /// One query against one loaded graph.
    Query(QueryRequest),
    /// A batch of queries, answered positionally in one
    /// [`ResponseBody::Batch`]. Queries may address **different** graphs;
    /// per-query failures surface as [`QueryResponse::Error`] without
    /// affecting the rest.
    Batch(Vec<QueryRequest>),
    /// A self-contained shard enumeration unit: the worker runs `KVCC-ENUM`
    /// on the embedded subgraph and answers
    /// [`QueryResponse::Components`] in **original** graph ids. Requires no
    /// loaded graph on the serving side, which is what lets a shard worker
    /// run from bytes alone.
    WorkItem {
        /// Connectivity parameter.
        k: u32,
        /// The subgraph plus its id map.
        item: CsrWorkItem,
    },
    /// Load a graph from a file **on the serving host** into a new slot,
    /// answered with [`QueryResponse::Loaded`]. Edge lists go through the
    /// streaming loader; `KCSR` files are served zero-copy when the
    /// engine's memory policy allows borrowing (no reordering, no
    /// compression) and decoded otherwise. The path is resolved by the
    /// server process, so this variant only makes sense on trusted,
    /// co-located deployments (the shard worker rejects it).
    LoadGraph {
        /// Name to register the graph under (diagnostic only).
        name: String,
        /// Path of the file on the serving host.
        path: String,
        /// How to interpret the file.
        format: LoadFormat,
    },
    /// Apply a batch of edge inserts/deletes to a loaded graph (protocol
    /// v5), answered with [`QueryResponse::Updated`]. The engine mutates
    /// the graph, repairs its [`kvcc::ConnectivityIndex`] incrementally
    /// (blast radius bounded by the touched leaves' ancestor subtrees,
    /// falling back to a full rebuild past a threshold) and advances the
    /// slot's epoch by exactly one — atomically: queries in flight keep
    /// reading the pre-update snapshot, and a failed batch leaves the slot
    /// untouched. Vertex ids are in the graph's loaded id space. Redundant
    /// updates (duplicate insert, missing delete, self-loops) are tolerated
    /// no-ops, matching [`kvcc_graph::DeltaGraph`].
    ApplyUpdates {
        /// Target graph.
        graph: GraphId,
        /// The edge mutations, applied in order.
        updates: Vec<EdgeUpdate>,
    },
    /// Present a shared-secret token to an authenticated endpoint (protocol
    /// v6), answered with [`QueryResponse::HandshakeOk`] on a match and
    /// [`ServiceError::Unauthorized`] on a mismatch. A `kvcc-shardd` started
    /// with `--token` requires this to be the **first** frame of every
    /// connection and refuses all other work until it succeeds; endpoints
    /// without a configured token accept the frame as a no-op, so clients
    /// can handshake unconditionally.
    Handshake {
        /// The shared secret, compared verbatim.
        token: String,
    },
}

/// The protocol-v2 response envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The [`Request::request_id`] this answers.
    pub request_id: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// The payload of a [`Response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseBody {
    /// The answer to a [`RequestBody::Query`] or [`RequestBody::WorkItem`].
    Query(QueryResponse),
    /// Positional answers to a [`RequestBody::Batch`].
    Batch(Vec<QueryResponse>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let id = GraphId(3);
        let requests = [
            QueryRequest::EnumerateKvccs { graph: id, k: 4 },
            QueryRequest::KvccsContaining {
                graph: id,
                seed: 1,
                k: 4,
            },
            QueryRequest::MaxConnectivity {
                graph: id,
                u: 0,
                v: 1,
            },
            QueryRequest::VertexConnectivityNumber { graph: id, v: 2 },
            QueryRequest::GlobalCutProbe { graph: id, k: 3 },
            QueryRequest::LocalConnectivity {
                graph: id,
                u: 0,
                v: 1,
                limit: 8,
            },
            QueryRequest::GraphStats { graph: id },
            QueryRequest::TopKComponents {
                graph: id,
                rank_by: RankBy::Density,
                page_size: 10,
                cursor: None,
            },
        ];
        for r in &requests {
            assert_eq!(r.graph(), id);
        }
        assert_eq!(
            requests.iter().filter(|r| r.needs_index()).count(),
            4,
            "exactly the hierarchy-backed queries need the index"
        );
    }

    #[test]
    fn errors_display_their_context_and_codes() {
        assert!(ServiceError::UnknownGraph { graph: GraphId(9) }
            .to_string()
            .contains('9'));
        assert!(ServiceError::VertexOutOfRange { vertex: 42 }
            .to_string()
            .contains("42"));
        let from_kvcc: ServiceError = KvccError::SeedOutOfRange { seed: 7 }.into();
        assert_eq!(from_kvcc, ServiceError::VertexOutOfRange { vertex: 7 });
        let from_invalid: ServiceError = KvccError::InvalidK.into();
        assert!(matches!(from_invalid, ServiceError::Enumeration(_)));
        // The numeric codes are a wire contract: fixed, dense, and shown in
        // the display form.
        let all = [
            ServiceError::UnknownGraph { graph: GraphId(0) },
            ServiceError::VertexOutOfRange { vertex: 0 },
            ServiceError::Enumeration(String::new()),
            ServiceError::InvalidCursor {
                reason: String::new(),
            },
            ServiceError::DeadlineExceeded,
            ServiceError::Unsupported {
                what: String::new(),
            },
            ServiceError::MalformedRequest {
                reason: String::new(),
            },
            ServiceError::Transport {
                reason: String::new(),
            },
            ServiceError::LoadFailed {
                reason: String::new(),
            },
            ServiceError::Overloaded,
            ServiceError::Unauthorized,
        ];
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.code() as usize, i + 1);
            assert!(e.to_string().starts_with(&format!("[E{}]", i + 1)));
        }
        // Exactly the transient failure modes are retryable — in-flight
        // corruption/carrier loss (7, 8) and an admission shed (10); every
        // semantic rejection is terminal.
        let retryable: Vec<u16> = all
            .iter()
            .filter(|e| e.is_retryable())
            .map(|e| e.code())
            .collect();
        assert_eq!(retryable, vec![7, 8, 10]);
    }

    #[test]
    fn load_format_codes_roundtrip() {
        for format in [LoadFormat::EdgeList, LoadFormat::Kcsr] {
            assert_eq!(LoadFormat::from_code(format.code()), Some(format));
        }
        assert_eq!(LoadFormat::from_code(9), None);
        assert_eq!(LoadFormat::default(), LoadFormat::EdgeList);
    }

    #[test]
    fn cursors_roundtrip_and_reject_hostile_bytes() {
        let cursor = PageCursor {
            graph: GraphId(42),
            rank_by: RankBy::Size,
            offset: 12_345,
            num_nodes: 67_890,
            epoch: 3,
        };
        let bytes = cursor.to_bytes();
        assert_eq!(PageCursor::from_bytes(&bytes).unwrap(), cursor);
        for cut in 0..bytes.len() {
            assert!(PageCursor::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        assert!(PageCursor::from_bytes(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(PageCursor::from_bytes(&bad_version).is_err());
        let mut bad_rank = bytes.clone();
        bad_rank[5] = 77;
        assert!(PageCursor::from_bytes(&bad_rank).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(PageCursor::from_bytes(&trailing).is_err());
    }
}
