//! Plain-data request/response types of the serving layer.
//!
//! Requests and responses carry no references into engine state, so a future
//! network transport only has to serialise these values; the engine itself
//! never leaks `Arc`s or graph internals through the protocol.

use kvcc::{KVertexConnectedComponent, KvccError};
use kvcc_graph::VertexId;

/// Opaque handle of a graph loaded into a [`crate::ServiceEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u32);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph#{}", self.0)
    }
}

/// One query against a loaded graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// All k-VCCs of the graph (answered from the index when one is built,
    /// otherwise a full enumeration).
    EnumerateKvccs {
        /// Target graph.
        graph: GraphId,
        /// Connectivity parameter.
        k: u32,
    },
    /// The k-VCCs containing `seed` — the §6.4 case-study query. Served by an
    /// ancestor walk in the [`kvcc::ConnectivityIndex`].
    KvccsContaining {
        /// Target graph.
        graph: GraphId,
        /// The seed vertex.
        seed: VertexId,
        /// Connectivity parameter.
        k: u32,
    },
    /// The largest `k` such that `u` and `v` share a k-VCC (lowest common
    /// ancestor in the index forest).
    MaxConnectivity {
        /// Target graph.
        graph: GraphId,
        /// First vertex.
        u: VertexId,
        /// Second vertex.
        v: VertexId,
    },
    /// The vertex connectivity number of `v` (largest `k` with a k-VCC
    /// containing it).
    VertexConnectivityNumber {
        /// Target graph.
        graph: GraphId,
        /// The vertex.
        v: VertexId,
    },
    /// A raw `GLOBAL-CUT` probe: a vertex cut of size `< k`, or `None` when
    /// the graph is k-vertex connected. Runs on the worker's
    /// [`kvcc::global_cut::CutScratch`] arena.
    GlobalCutProbe {
        /// Target graph.
        graph: GraphId,
        /// Connectivity parameter.
        k: u32,
    },
    /// Exact local vertex connectivity `κ(u, v)` capped at `limit`, answered
    /// on the worker's flow arena.
    LocalConnectivity {
        /// Target graph.
        graph: GraphId,
        /// First vertex.
        u: VertexId,
        /// Second vertex.
        v: VertexId,
        /// Early-termination cap (the answer saturates here).
        limit: u32,
    },
    /// Basic statistics of a loaded graph (cheap health/debug query).
    GraphStats {
        /// Target graph.
        graph: GraphId,
    },
}

impl QueryRequest {
    /// The graph the request addresses.
    pub fn graph(&self) -> GraphId {
        match *self {
            QueryRequest::EnumerateKvccs { graph, .. }
            | QueryRequest::KvccsContaining { graph, .. }
            | QueryRequest::MaxConnectivity { graph, .. }
            | QueryRequest::VertexConnectivityNumber { graph, .. }
            | QueryRequest::GlobalCutProbe { graph, .. }
            | QueryRequest::LocalConnectivity { graph, .. }
            | QueryRequest::GraphStats { graph } => graph,
        }
    }

    /// Whether answering needs the [`kvcc::ConnectivityIndex`] (and should
    /// trigger its lazy construction). [`QueryRequest::EnumerateKvccs`] is
    /// excluded: it *uses* an existing index but a single enumeration is
    /// cheaper than building the whole hierarchy.
    pub fn needs_index(&self) -> bool {
        matches!(
            self,
            QueryRequest::KvccsContaining { .. }
                | QueryRequest::MaxConnectivity { .. }
                | QueryRequest::VertexConnectivityNumber { .. }
        )
    }
}

/// The answer to one [`QueryRequest`], in the same batch position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResponse {
    /// A list of components (enumeration and containment queries).
    Components(Vec<KVertexConnectedComponent>),
    /// A connectivity value (max-connectivity and local-connectivity
    /// queries).
    Connectivity(u32),
    /// A vertex cut of size `< k`, or `None` when none exists.
    Cut(Option<Vec<VertexId>>),
    /// Graph statistics.
    Stats {
        /// Number of vertices.
        num_vertices: usize,
        /// Number of undirected edges.
        num_edges: usize,
        /// Whether the connectivity index has been built.
        indexed: bool,
        /// Deepest hierarchy level when indexed (0 otherwise).
        max_k: u32,
    },
    /// The request failed; the batch keeps going for the other requests.
    Error(ServiceError),
}

/// Errors surfaced through [`QueryResponse::Error`] or the engine API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The [`GraphId`] does not name a loaded graph.
    UnknownGraph {
        /// The offending handle.
        graph: GraphId,
    },
    /// A vertex id is outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
    },
    /// The underlying enumeration rejected the parameters or failed.
    Enumeration(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownGraph { graph } => {
                write!(f, "{graph} is not loaded")
            }
            ServiceError::VertexOutOfRange { vertex } => {
                write!(f, "vertex {vertex} is out of range")
            }
            ServiceError::Enumeration(message) => write!(f, "enumeration failed: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<KvccError> for ServiceError {
    fn from(value: KvccError) -> Self {
        match value {
            KvccError::SeedOutOfRange { seed } => ServiceError::VertexOutOfRange { vertex: seed },
            other => ServiceError::Enumeration(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let id = GraphId(3);
        let requests = [
            QueryRequest::EnumerateKvccs { graph: id, k: 4 },
            QueryRequest::KvccsContaining {
                graph: id,
                seed: 1,
                k: 4,
            },
            QueryRequest::MaxConnectivity {
                graph: id,
                u: 0,
                v: 1,
            },
            QueryRequest::VertexConnectivityNumber { graph: id, v: 2 },
            QueryRequest::GlobalCutProbe { graph: id, k: 3 },
            QueryRequest::LocalConnectivity {
                graph: id,
                u: 0,
                v: 1,
                limit: 8,
            },
            QueryRequest::GraphStats { graph: id },
        ];
        for r in &requests {
            assert_eq!(r.graph(), id);
        }
        assert_eq!(
            requests.iter().filter(|r| r.needs_index()).count(),
            3,
            "exactly the hierarchy-backed queries need the index"
        );
    }

    #[test]
    fn errors_display_their_context() {
        assert!(ServiceError::UnknownGraph { graph: GraphId(9) }
            .to_string()
            .contains('9'));
        assert!(ServiceError::VertexOutOfRange { vertex: 42 }
            .to_string()
            .contains("42"));
        let from_kvcc: ServiceError = KvccError::SeedOutOfRange { seed: 7 }.into();
        assert_eq!(from_kvcc, ServiceError::VertexOutOfRange { vertex: 7 });
        let from_invalid: ServiceError = KvccError::InvalidK.into();
        assert!(matches!(from_invalid, ServiceError::Enumeration(_)));
    }
}
