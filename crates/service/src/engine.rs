//! The long-lived [`ServiceEngine`]: hot CSR graphs + lazy connectivity
//! indexes + a batched worker pool.

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use kvcc::global_cut::{global_cut_with_scratch, CutScratch};
use kvcc::index::{ConnectivityIndex, RankBy};
use kvcc::stats::EnumerationStats;
use kvcc::{
    effective_threads, enumerate_kvccs, split_cost, Budget, KVertexConnectedComponent, KvccError,
    KvccOptions, UpdateReport,
};
use kvcc_flow::{LocalConnectivity, VertexFlowGraph};
use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::reorder::{compute_ordering, OrderingStrategy, VertexOrdering};
use kvcc_graph::traversal::is_connected;
use kvcc_graph::{
    CompressedCsrGraph, CsrGraph, DeltaGraph, EdgeUpdate, GraphLoader, GraphView, MappedCsr,
    RowPool, StreamingEdgeListLoader, SubgraphView, VertexId,
};

// `OrderingPolicy` is protocol-visible since v2 (reported by `Stats`); it is
// re-exported here because the engine is its natural home for readers.
use crate::coordinator::{run_fleet, CoordinatorConfig, FleetOutcome, FleetStats};
pub use crate::protocol::OrderingPolicy;
use crate::protocol::{
    GraphId, LoadFormat, PageCursor, QosStats, QueryRequest, QueryResponse, RankedEntry, Request,
    RequestBody, Response, ResponseBody, SchedulingStats, ServiceError,
};
use crate::qos::{self, CacheKey, FlightOutcome, QosConfig, QosLayer};
use crate::wire::transport::{Transport, TransportError};
use crate::wire::{run_work_item, CsrWorkItem};

impl OrderingPolicy {
    /// The reordering strategy to apply, or `None` for [`Self::Preserve`].
    fn strategy(self) -> Option<OrderingStrategy> {
        match self {
            OrderingPolicy::Preserve => None,
            OrderingPolicy::DegreeDescending => Some(OrderingStrategy::DegreeDescending),
            OrderingPolicy::Bfs => Some(OrderingStrategy::Bfs),
            OrderingPolicy::Hybrid => Some(OrderingStrategy::Hybrid),
        }
    }
}

/// Engine tuning knobs. The default uses one batch worker per available
/// core (`threads: 0`), the paper's `VCCE*` enumeration options, no
/// index depth cap and the loaded vertex order.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads for [`ServiceEngine::execute_batch`]: `0` uses
    /// [`std::thread::available_parallelism`], `n >= 1` a fixed pool.
    pub threads: usize,
    /// Enumeration options used for direct enumerations and index builds.
    pub enumeration: KvccOptions,
    /// Depth cap for lazily built indexes (`None`: up to the degeneracy).
    /// With a cap, containment/enumeration queries for `k` beyond it fall
    /// back to direct enumeration, and connectivity-value queries
    /// ([`crate::QueryRequest::MaxConnectivity`],
    /// [`crate::QueryRequest::VertexConnectivityNumber`]) saturate at the
    /// cap.
    pub index_max_k: Option<u32>,
    /// Memory layout of hot graphs (see [`OrderingPolicy`]). Responses are
    /// identical under every policy.
    pub ordering: OrderingPolicy,
    /// Store hot graphs delta+varint compressed
    /// ([`CompressedCsrGraph`]) instead of plain CSR. All slots share one
    /// engine-wide decode-buffer pool ([`RowPool`]), so the decode caches of
    /// hot-swapped datasets recycle each other's allocations instead of
    /// growing per graph. Responses are identical either way; queries pay
    /// the (cached) row-decode cost in exchange for the compressed resident
    /// form.
    pub compression: bool,
    /// Query-serving QoS: the epoch-keyed result cache, single-flight
    /// coalescing of identical in-flight queries, and cost-model admission
    /// control (see [`crate::qos`]). The default is fully disabled — the
    /// engine behaves exactly as before protocol v6 until a deployment opts
    /// in (e.g. [`QosConfig::serving`]).
    pub qos: QosConfig,
    /// Overlay-retention threshold for uncompressed slots absorbing edge
    /// updates: after a batch, the slot keeps its [`DeltaGraph`] overlay
    /// while `overlay_ratio() <= compact_overlay_ratio` and folds it into a
    /// clean CSR (counted in [`SchedulingStats::compactions`]) once the
    /// ratio crosses the threshold. The default `0.0` compacts after every
    /// effective batch — the pre-v6 behaviour; raise it (e.g. `0.25`) to
    /// amortise compaction over many small batches. Compressed slots always
    /// re-materialise (the compressed form has no overlay).
    pub compact_overlay_ratio: f64,
}

/// How a slot stores its graph: plain CSR, compressed with the decode cache
/// backed by the engine's shared [`RowPool`], borrowed zero-copy from the
/// validated bytes of an aligned `KCSR` file ([`MappedCsr`]), or a CSR base
/// plus a retained mutation overlay ([`DeltaGraph`]) for uncompressed slots
/// that absorbed updates without crossing
/// [`EngineConfig::compact_overlay_ratio`]. Implements [`GraphView`] by
/// delegation so every query path runs on any representation unchanged.
enum StoredGraph {
    Plain(CsrGraph),
    Compressed(CompressedCsrGraph),
    Borrowed(MappedCsr),
    Delta(DeltaGraph),
}

impl GraphView for StoredGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        match self {
            StoredGraph::Plain(g) => g.num_vertices(),
            StoredGraph::Compressed(g) => g.num_vertices(),
            StoredGraph::Borrowed(g) => g.num_vertices(),
            StoredGraph::Delta(g) => g.num_vertices(),
        }
    }

    #[inline]
    fn num_edges(&self) -> usize {
        match self {
            StoredGraph::Plain(g) => g.num_edges(),
            StoredGraph::Compressed(g) => g.num_edges(),
            StoredGraph::Borrowed(g) => g.num_edges(),
            StoredGraph::Delta(g) => g.num_edges(),
        }
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self {
            StoredGraph::Plain(g) => g.neighbors(v),
            StoredGraph::Compressed(g) => g.neighbors(v),
            StoredGraph::Borrowed(g) => g.neighbors(v),
            StoredGraph::Delta(g) => g.neighbors(v),
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        match self {
            StoredGraph::Plain(g) => g.degree(v),
            StoredGraph::Compressed(g) => GraphView::degree(g, v),
            StoredGraph::Borrowed(g) => GraphView::degree(g, v),
            StoredGraph::Delta(g) => GraphView::degree(g, v),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            StoredGraph::Plain(g) => g.memory_bytes(),
            StoredGraph::Compressed(g) => g.memory_bytes(),
            StoredGraph::Borrowed(g) => g.memory_bytes(),
            StoredGraph::Delta(g) => g.memory_bytes(),
        }
    }
}

/// What [`ServiceEngine::load_from_path`] loaded: the in-process mirror of
/// the wire-level [`QueryResponse::Loaded`] response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Handle of the freshly loaded graph.
    pub graph: GraphId,
    /// Vertices after normalisation.
    pub num_vertices: u64,
    /// Undirected edges after normalisation.
    pub num_edges: u64,
    /// Self-loop lines dropped during ingestion (edge lists only; `KCSR`
    /// files are already normalised).
    pub self_loops: u64,
    /// Duplicate edge occurrences dropped during ingestion (edge lists
    /// only).
    pub duplicates: u64,
    /// Whether the slot borrows the validated file bytes zero-copy instead
    /// of holding a decoded CSR copy.
    pub zero_copy: bool,
}

/// Cumulative per-slot scheduling counters (relaxed atomics: the counters
/// are monotone telemetry, not synchronisation).
#[derive(Default)]
struct SlotMetrics {
    work_items: AtomicU64,
    steals: AtomicU64,
    splits: AtomicU64,
    cancelled_runs: AtomicU64,
    retries: AtomicU64,
    requeues: AtomicU64,
    quarantines: AtomicU64,
    reinstatements: AtomicU64,
    local_fallbacks: AtomicU64,
    update_batches: AtomicU64,
    update_edges: AtomicU64,
    update_rebuilds: AtomicU64,
    compactions: AtomicU64,
}

impl SlotMetrics {
    /// Folds one enumeration's statistics (complete or partial) into the
    /// slot totals.
    fn record(&self, stats: &EnumerationStats) {
        self.work_items
            .fetch_add(stats.work_items_executed, Ordering::Relaxed);
        self.steals.fetch_add(stats.steals, Ordering::Relaxed);
        self.splits.fetch_add(stats.splits, Ordering::Relaxed);
        if stats.cancelled {
            self.cancelled_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one sharded enumeration's failure handling into the slot
    /// totals.
    fn record_fleet(&self, stats: &FleetStats) {
        self.retries.fetch_add(stats.retries, Ordering::Relaxed);
        self.requeues.fetch_add(stats.requeues, Ordering::Relaxed);
        self.quarantines
            .fetch_add(stats.quarantines, Ordering::Relaxed);
        self.reinstatements
            .fetch_add(stats.reinstatements, Ordering::Relaxed);
        self.local_fallbacks
            .fetch_add(stats.local_fallbacks, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SchedulingStats {
        SchedulingStats {
            work_items: self.work_items.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            cancelled_runs: self.cancelled_runs.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            reinstatements: self.reinstatements.load(Ordering::Relaxed),
            local_fallbacks: self.local_fallbacks.load(Ordering::Relaxed),
            update_batches: self.update_batches.load(Ordering::Relaxed),
            update_edges: self.update_edges.load(Ordering::Relaxed),
            update_rebuilds: self.update_rebuilds.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// One loaded graph: the shared stored form (possibly relabelled per the
/// engine's [`OrderingPolicy`], possibly compressed), the id maps bridging
/// the internal and loaded spaces, the lazily built index (internal id
/// space) and the slot's scheduling telemetry.
struct GraphSlot {
    name: String,
    graph: StoredGraph,
    /// `Some` when the engine stores the graph reordered; `None` means the
    /// internal ids equal the loaded ids.
    ordering: Option<VertexOrdering>,
    index: OnceLock<ConnectivityIndex>,
    /// Canonical top-k listing, built once from the index (see
    /// [`TopkOrders`]).
    topk: OnceLock<TopkOrders>,
    /// Shared with the slot's successors: applying an update batch replaces
    /// the whole (immutable) slot, and the telemetry must survive the swap.
    metrics: Arc<SlotMetrics>,
    /// How many update batches this graph has absorbed since it was loaded.
    /// Starts at 0, +1 per [`ServiceEngine::apply_updates`] batch; stamps
    /// page cursors and the lazily built index so stale readers are caught.
    epoch: u64,
}

/// The slot-level ranking state behind `TopKComponents`: every forest
/// node's component translated to **loaded** ids, plus one permutation per
/// [`kvcc::index::RankBy`] key sorted over them.
///
/// The index's own rank orders break ties by internal node id, which
/// depends on the engine's [`OrderingPolicy`] (the hierarchy is built on
/// the relabelled graph). Pages must be identical under every policy — the
/// PR 3 response invariant — so the engine re-sorts in external space: key
/// descending, ties by the loaded-id member list, then by level (two nodes
/// can share a member list only at different levels). Built lazily on the
/// first top-k query and cached for the slot's lifetime (the index is
/// immutable once set).
struct TopkOrders {
    /// Per forest node: the component in loaded ids (canonical sorted form).
    external: Vec<KVertexConnectedComponent>,
    /// Per [`kvcc::index::RankBy`] code: node ids in page order.
    orders: [Vec<u32>; 3],
}

impl GraphSlot {
    /// The index, building it on first use. Concurrent builders race benignly
    /// (the loser's index is dropped); failures are returned per call so a
    /// later query retries instead of caching the error forever.
    fn index_or_build(&self, config: &EngineConfig) -> Result<&ConnectivityIndex, ServiceError> {
        if let Some(index) = self.index.get() {
            return Ok(index);
        }
        let mut built =
            ConnectivityIndex::build(&self.graph, config.index_max_k, &config.enumeration)
                .map_err(ServiceError::from)?;
        // The slot is the epoch authority: an index built lazily after N
        // update batches describes the N-th graph revision.
        built.set_epoch(self.epoch);
        let _ = self.index.set(built);
        Ok(self.index.get().expect("just set"))
    }

    /// Translates a caller-supplied (loaded-space) vertex id into the slot's
    /// internal space. The caller must have range-checked `v`.
    #[inline]
    fn to_internal(&self, v: VertexId) -> VertexId {
        match &self.ordering {
            Some(ordering) => ordering.to_new(v),
            None => v,
        }
    }

    /// Translates an internal vertex id back into the loaded space.
    #[inline]
    fn to_external(&self, v: VertexId) -> VertexId {
        match &self.ordering {
            Some(ordering) => ordering.to_old(v),
            None => v,
        }
    }

    /// The canonical top-k listing, built on first use from the slot's
    /// (already built) index.
    fn topk_orders(&self, ix: &ConnectivityIndex) -> &TopkOrders {
        self.topk.get_or_init(|| {
            let n = ix.num_nodes();
            let external: Vec<KVertexConnectedComponent> = (0..n as u32)
                .map(|id| {
                    let comp = ix.node_component(id).expect("node id in range");
                    match &self.ordering {
                        None => comp.clone(),
                        Some(_) => KVertexConnectedComponent::new(
                            comp.vertices()
                                .iter()
                                .map(|&v| self.to_external(v))
                                .collect(),
                        ),
                    }
                })
                .collect();
            // One key triple per node; the ranking itself is the shared
            // definition in `kvcc::index::rank_key_cmp`, so the engine's
            // page order can never diverge from the index's.
            let key_of = |id: u32| -> (u32, usize, u64) {
                (
                    ix.node_k(id).expect("node id in range"),
                    external[id as usize].len(),
                    ix.internal_edges_of(id).expect("node id in range"),
                )
            };
            let orders = std::array::from_fn(|slot| {
                let rank_by = RankBy::ALL[slot];
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    kvcc::index::rank_key_cmp(rank_by, key_of(a), key_of(b))
                        .then_with(|| external[a as usize].cmp(&external[b as usize]))
                        .then_with(|| ix.node_k(a).cmp(&ix.node_k(b)))
                });
                order
            });
            TopkOrders { external, orders }
        })
    }

    /// Maps a component list out of the internal space, restoring the
    /// canonical (loaded-id, sorted) form the protocol promises: member
    /// lists sort inside `KVertexConnectedComponent::new`, and the list
    /// itself is re-sorted because relabelling permutes the smallest-member
    /// order.
    fn components_to_external(
        &self,
        components: Vec<KVertexConnectedComponent>,
    ) -> Vec<KVertexConnectedComponent> {
        if self.ordering.is_none() {
            return components;
        }
        let mut mapped: Vec<KVertexConnectedComponent> = components
            .into_iter()
            .map(|c| {
                KVertexConnectedComponent::new(
                    c.vertices().iter().map(|&v| self.to_external(v)).collect(),
                )
            })
            .collect();
        mapped.sort();
        mapped
    }
}

/// Per-worker scratch arenas: one `GLOBAL-CUT` flow arena plus one
/// vertex-split flow arena for local-connectivity probes. Buffers grow to the
/// largest graph probed and are then reused across the whole batch.
struct WorkerScratch {
    cut: CutScratch,
    stats: EnumerationStats,
    flow: VertexFlowGraph,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            cut: CutScratch::new(),
            stats: EnumerationStats::default(),
            flow: VertexFlowGraph::empty(),
        }
    }
}

/// A long-lived query engine holding loaded graphs in CSR form.
///
/// All query methods take `&self`: the engine is meant to sit behind an `Arc`
/// with many request producers. Loading and unloading also take `&self`
/// (slot table behind a mutex), so a serving process can hot-swap datasets
/// without stopping the query path.
pub struct ServiceEngine {
    config: EngineConfig,
    graphs: Mutex<Vec<Option<Arc<GraphSlot>>>>,
    /// One decode-buffer pool shared by every compressed slot (see
    /// [`EngineConfig::compression`]); unused when compression is off.
    decode_pool: Arc<RowPool>,
    /// Serialises [`ServiceEngine::apply_updates`] batches against each
    /// other. The query path never takes this lock — readers keep their
    /// `Arc<GraphSlot>` snapshot and are untouched by a concurrent writer.
    update_lock: Mutex<()>,
    /// The QoS layer in front of every query path (see [`crate::qos`]);
    /// inert under the default disabled [`QosConfig`].
    qos: QosLayer,
}

impl ServiceEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let qos = QosLayer::new(config.qos.clone());
        ServiceEngine {
            config,
            graphs: Mutex::new(Vec::new()),
            decode_pool: Arc::new(RowPool::default()),
            update_lock: Mutex::new(()),
            qos,
        }
    }

    /// The engine-wide QoS counters (also carried by every
    /// [`QueryResponse::Stats`] response): cache hits and misses, coalesced
    /// waiters, shed requests, and the current admission queue depth.
    pub fn qos_stats(&self) -> QosStats {
        self.qos.snapshot()
    }

    /// The engine-wide decode-buffer pool backing compressed slots
    /// ([`EngineConfig::compression`]): `(buffers parked, acquisitions
    /// served from recycled capacity)`. Exposed so operators can verify the
    /// pool actually recycles across dataset hot-swaps.
    pub fn decode_pool_stats(&self) -> (usize, u64) {
        (
            self.decode_pool.pooled_buffers(),
            self.decode_pool.recycled_count(),
        )
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Loads a graph (any [`GraphView`]) into the engine as CSR, returning
    /// its handle. The index is *not* built yet; it is constructed lazily by
    /// the first query that needs it, or eagerly via
    /// [`ServiceEngine::build_index`].
    pub fn load_graph<G: GraphView>(&self, name: &str, graph: &G) -> GraphId {
        self.load_csr(name, CsrGraph::from_view(graph))
    }

    /// Loads an already-CSR graph without copying it. When the engine's
    /// [`OrderingPolicy`] is not [`OrderingPolicy::Preserve`] the graph is
    /// stored relabelled; every query still speaks loaded ids.
    pub fn load_csr(&self, name: &str, csr: CsrGraph) -> GraphId {
        let (csr, ordering) = match self.config.ordering.strategy() {
            Some(strategy) => {
                let ordering = compute_ordering(&csr, strategy);
                let reordered = csr.reordered(&ordering);
                (reordered, (!ordering.is_identity()).then_some(ordering))
            }
            None => (csr, None),
        };
        let graph = if self.config.compression {
            StoredGraph::Compressed(
                CompressedCsrGraph::from_csr(&csr).with_pool(Arc::clone(&self.decode_pool)),
            )
        } else {
            StoredGraph::Plain(csr)
        };
        self.push_slot(name, graph, ordering)
    }

    /// Installs a fully prepared [`StoredGraph`] as a new slot.
    fn push_slot(
        &self,
        name: &str,
        graph: StoredGraph,
        ordering: Option<VertexOrdering>,
    ) -> GraphId {
        let slot = Arc::new(GraphSlot {
            name: name.to_string(),
            graph,
            ordering,
            index: OnceLock::new(),
            topk: OnceLock::new(),
            metrics: Arc::new(SlotMetrics::default()),
            epoch: 0,
        });
        let mut graphs = self.graphs.lock().unwrap();
        graphs.push(Some(slot));
        GraphId((graphs.len() - 1) as u32)
    }

    /// Loads a graph from a file on the engine host, returning the handle
    /// plus ingestion diagnostics. This is the co-located fast path behind
    /// [`crate::protocol::RequestBody::LoadGraph`]:
    ///
    /// * [`LoadFormat::EdgeList`] streams the file through
    ///   [`StreamingEdgeListLoader`] (chunked parse → sorted-run merge →
    ///   direct CSR emission), so the text form is never materialised as
    ///   per-vertex adjacency `Vec`s.
    /// * [`LoadFormat::Kcsr`] opens an aligned `KCSR` v3 file. When the
    ///   engine's memory policy permits — [`OrderingPolicy::Preserve`] and
    ///   no [`EngineConfig::compression`] — the validated file bytes are
    ///   **borrowed** in place ([`MappedCsr`], `zero_copy: true` in the
    ///   report): the load does O(header) work plus one structural
    ///   validation pass, no CSR copy. Under any other policy the file is
    ///   decoded and takes the ordinary [`ServiceEngine::load_csr`] path.
    ///
    /// Any I/O, parse, or validation failure maps to
    /// [`ServiceError::LoadFailed`]; nothing is partially loaded.
    pub fn load_from_path(
        &self,
        name: &str,
        path: &Path,
        format: LoadFormat,
    ) -> Result<LoadReport, ServiceError> {
        let load_failed = |e: kvcc_graph::GraphError| ServiceError::LoadFailed {
            reason: e.to_string(),
        };
        match format {
            LoadFormat::EdgeList => {
                let ingested = StreamingEdgeListLoader::new()
                    .load_path(path)
                    .map_err(load_failed)?;
                let num_vertices = ingested.graph.num_vertices() as u64;
                let num_edges = ingested.graph.num_edges() as u64;
                Ok(LoadReport {
                    graph: self.load_csr(name, ingested.graph),
                    num_vertices,
                    num_edges,
                    self_loops: ingested.stats.self_loops as u64,
                    duplicates: ingested.stats.duplicates as u64,
                    zero_copy: false,
                })
            }
            LoadFormat::Kcsr => {
                let borrowable =
                    self.config.ordering.strategy().is_none() && !self.config.compression;
                if borrowable {
                    let mapped = MappedCsr::open(path).map_err(load_failed)?;
                    let num_vertices = mapped.num_vertices() as u64;
                    let num_edges = mapped.num_edges() as u64;
                    Ok(LoadReport {
                        graph: self.push_slot(name, StoredGraph::Borrowed(mapped), None),
                        num_vertices,
                        num_edges,
                        self_loops: 0,
                        duplicates: 0,
                        zero_copy: true,
                    })
                } else {
                    let bytes = std::fs::read(path).map_err(|e| ServiceError::LoadFailed {
                        reason: e.to_string(),
                    })?;
                    let csr = kvcc_graph::decode_kcsr(&bytes).map_err(load_failed)?;
                    let num_vertices = csr.num_vertices() as u64;
                    let num_edges = csr.num_edges() as u64;
                    Ok(LoadReport {
                        graph: self.load_csr(name, csr),
                        num_vertices,
                        num_edges,
                        self_loops: 0,
                        duplicates: 0,
                        zero_copy: false,
                    })
                }
            }
        }
    }

    /// Unloads a graph; returns `false` when the handle was already empty.
    /// In-flight batches holding the slot's `Arc` finish normally.
    pub fn unload(&self, graph: GraphId) -> bool {
        let mut graphs = self.graphs.lock().unwrap();
        match graphs.get_mut(graph.0 as usize) {
            Some(slot) => slot.take().is_some(),
            None => false,
        }
    }

    /// Number of currently loaded graphs.
    pub fn graph_count(&self) -> usize {
        self.graphs
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// The name a graph was loaded under.
    pub fn graph_name(&self, graph: GraphId) -> Result<String, ServiceError> {
        Ok(self.slot(graph)?.name.clone())
    }

    /// Eagerly builds the connectivity index of a loaded graph.
    pub fn build_index(&self, graph: GraphId) -> Result<(), ServiceError> {
        let slot = self.slot(graph)?;
        slot.index_or_build(&self.config).map(|_| ())
    }

    /// Serialises a graph's connectivity index (building it first if
    /// needed) for persistence. Restoring the bytes into a restarted engine
    /// via [`ServiceEngine::install_index_bytes`] skips the hierarchy build
    /// entirely.
    ///
    /// The bytes are expressed in the slot's **internal** id space, so they
    /// must be restored into an engine using the same [`OrderingPolicy`]
    /// (orderings are deterministic, making that reproducible).
    pub fn index_bytes(&self, graph: GraphId) -> Result<Vec<u8>, ServiceError> {
        let slot = self.slot(graph)?;
        slot.index_or_build(&self.config).map(|ix| ix.to_bytes())
    }

    /// Installs a previously persisted connectivity index
    /// ([`ServiceEngine::index_bytes`]) into a loaded graph, validating the
    /// buffer against the slot: the declared vertex count is checked from
    /// the header **before** anything is allocated, and every component of
    /// the parsed forest is structurally spot-checked against the slot's
    /// adjacency (each member needs `min(k, |C|−1)` neighbours inside its
    /// component). The spot-check is not a full k-connectivity
    /// re-verification, but an index persisted from a different graph — or
    /// from the same graph under a different [`OrderingPolicy`] — fails it
    /// with overwhelming probability instead of silently answering wrong.
    /// Returns an error when a (possibly different) index is already built
    /// for the slot — the engine never silently swaps a live index.
    pub fn install_index_bytes(&self, graph: GraphId, bytes: &[u8]) -> Result<(), ServiceError> {
        let slot = self.slot(graph)?;
        match ConnectivityIndex::peek_num_vertices(bytes) {
            Some(n) if n == slot.graph.num_vertices() => {}
            Some(_) => {
                return Err(ServiceError::Enumeration(
                    "persisted index does not match the graph's vertex count".into(),
                ))
            }
            None => {
                return Err(ServiceError::Enumeration(
                    "not a connectivity-index buffer".into(),
                ))
            }
        }
        let mut index = ConnectivityIndex::from_bytes(bytes)
            .map_err(|e| ServiceError::Enumeration(e.to_string()))?;
        // The slot is the epoch authority (see `index_or_build`): a restored
        // buffer adopts the slot's update epoch, whatever revision count its
        // previous life had accumulated.
        index.set_epoch(slot.epoch);
        if !index_matches_graph(&slot.graph, &index) {
            return Err(ServiceError::Enumeration(
                "persisted index is inconsistent with the loaded graph \
                 (different graph or ordering policy?)"
                    .into(),
            ));
        }
        slot.index
            .set(index)
            .map_err(|_| ServiceError::Enumeration("an index is already installed".into()))
    }

    /// Applies one batch of edge updates to a loaded graph **atomically**.
    /// In-flight queries keep reading the pre-update snapshot (they hold the
    /// old slot's `Arc`); the handle swings to the updated graph in a single
    /// swap, with the slot epoch bumped by one.
    ///
    /// The slot's connectivity index, when already built, is repaired
    /// incrementally ([`ConnectivityIndex::apply_updates`]): only the
    /// hierarchy subtrees whose level-1 components touch an updated endpoint
    /// are re-enumerated, and the repaired forest is byte-identical to a
    /// from-scratch rebuild. A slot whose index was never built stays
    /// unindexed — the next query that needs it builds against the updated
    /// graph (and stamps it with the new epoch). A zero-copy (`KCSR`
    /// borrowed) slot is materialised by its first update batch; subsequent
    /// storage follows [`EngineConfig::compression`] and, for uncompressed
    /// slots, [`EngineConfig::compact_overlay_ratio`]: the mutation overlay
    /// is retained across batches and folded into a clean CSR (a
    /// *compaction*, counted in [`SchedulingStats::compactions`]) only when
    /// its size relative to the base crosses the threshold.
    ///
    /// Update endpoints are loaded-space ids, like every other request.
    /// Redundant operations — inserting a present edge, deleting an absent
    /// one, self-loops — are tolerated counted no-ops, exactly as in graph
    /// construction. Outstanding `TopKComponents` page cursors are
    /// invalidated by the epoch bump. Concurrent update batches serialise;
    /// an update racing an [`ServiceEngine::unload`] of the same handle
    /// loses cleanly with [`ServiceError::UnknownGraph`].
    pub fn apply_updates(
        &self,
        graph: GraphId,
        updates: &[EdgeUpdate],
    ) -> Result<UpdateReport, ServiceError> {
        self.apply_updates_inner(graph, updates, &Budget::unlimited())
    }

    fn apply_updates_inner(
        &self,
        graph: GraphId,
        updates: &[EdgeUpdate],
        budget: &Budget,
    ) -> Result<UpdateReport, ServiceError> {
        // One writer at a time; the query path never takes this lock.
        let _writer = self.update_lock.lock().unwrap();
        let slot = self.slot(graph)?;
        for update in updates {
            for vertex in [update.u, update.v] {
                if vertex as usize >= slot.graph.num_vertices() {
                    return Err(ServiceError::VertexOutOfRange { vertex });
                }
            }
        }
        // The batch is applied in the slot's internal space so the repaired
        // index stays aligned with the stored (possibly relabelled) graph.
        let internal: Vec<EdgeUpdate> = updates
            .iter()
            .map(|up| EdgeUpdate {
                op: up.op,
                u: slot.to_internal(up.u),
                v: slot.to_internal(up.v),
            })
            .collect();
        // A slot already carrying an overlay keeps layering onto it (that is
        // what makes `overlay_ratio` grow across batches); every other
        // representation starts a fresh overlay over a materialised base.
        let mut delta = match &slot.graph {
            StoredGraph::Delta(existing) => existing.clone(),
            other => DeltaGraph::new(CsrGraph::from_view(other)),
        };
        delta
            .apply(&internal)
            .map_err(|e| ServiceError::Enumeration(e.to_string()))?;

        let epoch = slot.epoch + 1;
        let (index, report) = match slot.index.get() {
            Some(ix) => {
                let mut repaired = ix.clone();
                let options = self.config.enumeration.clone().with_budget(budget.clone());
                let report = repaired
                    .apply_updates(&delta, &internal, &options)
                    .map_err(ServiceError::from)?;
                if report.rebuilt {
                    slot.metrics.update_rebuilds.fetch_add(1, Ordering::Relaxed);
                }
                (Some(repaired), report)
            }
            None => (
                None,
                UpdateReport {
                    epoch,
                    repaired_nodes: 0,
                    rebuilt: false,
                    affected_vertices: 0,
                },
            ),
        };

        let stored = if self.config.compression {
            StoredGraph::Compressed(
                CompressedCsrGraph::from_csr(&delta.into_csr())
                    .with_pool(Arc::clone(&self.decode_pool)),
            )
        } else if delta.needs_compaction(self.config.compact_overlay_ratio) {
            slot.metrics.compactions.fetch_add(1, Ordering::Relaxed);
            StoredGraph::Plain(delta.into_csr())
        } else {
            StoredGraph::Delta(delta)
        };
        let index_cell = OnceLock::new();
        if let Some(ix) = index {
            let _ = index_cell.set(ix);
        }
        let replacement = Arc::new(GraphSlot {
            name: slot.name.clone(),
            graph: stored,
            // The relabelling stays valid (updates never change `n`); it is
            // merely no longer degree-optimal, which affects locality only.
            ordering: slot.ordering.clone(),
            index: index_cell,
            // The top-k listing describes the old forest; rebuilt lazily.
            topk: OnceLock::new(),
            metrics: Arc::clone(&slot.metrics),
            epoch,
        });
        {
            let mut graphs = self.graphs.lock().unwrap();
            match graphs.get_mut(graph.0 as usize) {
                // The handle must still hold the slot this batch was computed
                // against — a concurrent unload loses the race cleanly.
                Some(entry) if entry.as_ref().is_some_and(|s| Arc::ptr_eq(s, &slot)) => {
                    *entry = Some(replacement);
                }
                _ => return Err(ServiceError::UnknownGraph { graph }),
            }
        }
        slot.metrics.update_batches.fetch_add(1, Ordering::Relaxed);
        slot.metrics
            .update_edges
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// The number of update batches a loaded graph has absorbed (0 for a
    /// freshly loaded slot). This is the epoch stamped into `Stats`
    /// responses, page cursors and lazily built indexes.
    pub fn graph_epoch(&self, graph: GraphId) -> Result<u64, ServiceError> {
        Ok(self.slot(graph)?.epoch)
    }

    /// Executes one request (on the caller's thread, with a throwaway
    /// scratch). Prefer [`ServiceEngine::execute_batch`] for traffic.
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        self.execute_with(request, &mut WorkerScratch::new(), &Budget::unlimited())
    }

    /// Executes a batch of requests on the worker pool, returning one
    /// response per request in the same order. Individual failures surface as
    /// [`QueryResponse::Error`] without affecting the rest of the batch.
    pub fn execute_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        self.execute_batch_inner(requests, &Budget::unlimited())
    }

    /// [`ServiceEngine::execute_batch`] under a deadline [`Budget`]. The
    /// token is checked **between** requests (a request whose turn comes
    /// after expiry is answered [`ServiceError::DeadlineExceeded`] without
    /// executing) and threaded **into** each request (a long enumeration
    /// already running when the deadline passes is interrupted at its next
    /// checkpoint), so one slow batch position cannot blow through its
    /// envelope's hint either way.
    fn execute_batch_inner(
        &self,
        requests: &[QueryRequest],
        budget: &Budget,
    ) -> Vec<QueryResponse> {
        let threads = effective_threads(self.config.threads).min(requests.len().max(1));
        if threads <= 1 {
            let mut scratch = WorkerScratch::new();
            return requests
                .iter()
                .map(|r| {
                    if budget.expired() {
                        QueryResponse::Error(ServiceError::DeadlineExceeded)
                    } else {
                        self.execute_with(r, &mut scratch, budget)
                    }
                })
                .collect();
        }

        // Index builds are expensive and racy under OnceLock (concurrent
        // losers throw work away), so resolve them once up front.
        let mut prebuilt: Vec<GraphId> = requests
            .iter()
            .filter(|r| r.needs_index())
            .map(|r| r.graph())
            .collect();
        prebuilt.sort_unstable();
        prebuilt.dedup();
        for graph in prebuilt {
            // Unknown graphs and build failures are reported per request.
            let _ = self.build_index(graph);
        }

        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, QueryResponse)>> =
            Mutex::new(Vec::with_capacity(requests.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = WorkerScratch::new();
                    let mut local: Vec<(usize, QueryResponse)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        let response = if budget.expired() {
                            QueryResponse::Error(ServiceError::DeadlineExceeded)
                        } else {
                            self.execute_with(&requests[i], &mut scratch, budget)
                        };
                        local.push((i, response));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        let mut indexed = collected.into_inner().unwrap();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Executes one protocol-v2 envelope: the request id is echoed, the
    /// deadline hint (measured from this call) is enforced, and the body is
    /// dispatched — single queries to the direct path, batches to the worker
    /// pool, work items to the shard executor. This is the single entry
    /// point behind [`ServiceEngine::handle_frame`], so in-process callers
    /// and byte-driven transports observe identical semantics.
    pub fn execute_request(&self, request: &Request) -> Response {
        let budget = request.budget();
        let body = match &request.body {
            RequestBody::Query(query) => ResponseBody::Query(if budget.expired() {
                QueryResponse::Error(ServiceError::DeadlineExceeded)
            } else {
                self.execute_with(query, &mut WorkerScratch::new(), &budget)
            }),
            RequestBody::Batch(queries) => {
                ResponseBody::Batch(self.execute_batch_inner(queries, &budget))
            }
            RequestBody::WorkItem { k, item } => ResponseBody::Query(if budget.expired() {
                QueryResponse::Error(ServiceError::DeadlineExceeded)
            } else {
                let options = self.config.enumeration.clone().with_budget(budget);
                match run_work_item(item, *k, &options) {
                    Ok(components) => QueryResponse::Components(components),
                    Err(e) => QueryResponse::Error(e.into()),
                }
            }),
            RequestBody::LoadGraph { name, path, format } => {
                ResponseBody::Query(if budget.expired() {
                    QueryResponse::Error(ServiceError::DeadlineExceeded)
                } else {
                    match self.load_from_path(name, Path::new(path), *format) {
                        Ok(report) => QueryResponse::Loaded {
                            graph: report.graph,
                            num_vertices: report.num_vertices,
                            num_edges: report.num_edges,
                            self_loops: report.self_loops,
                            duplicates: report.duplicates,
                            zero_copy: report.zero_copy,
                        },
                        Err(e) => QueryResponse::Error(e),
                    }
                })
            }
            RequestBody::Handshake { .. } => {
                // Token *checking* lives at the transport boundary (the
                // accept path of a `--token`-armed `kvcc-shardd`); an engine
                // reached in-process or behind an unarmed endpoint treats
                // the handshake as a no-op so clients can send it
                // unconditionally.
                ResponseBody::Query(QueryResponse::HandshakeOk)
            }
            RequestBody::ApplyUpdates { graph, updates } => {
                ResponseBody::Query(if budget.expired() {
                    QueryResponse::Error(ServiceError::DeadlineExceeded)
                } else {
                    match self.apply_updates_inner(*graph, updates, &budget) {
                        Ok(report) => QueryResponse::Updated {
                            epoch: report.epoch,
                            repaired_nodes: report.repaired_nodes,
                            rebuilt: report.rebuilt,
                        },
                        Err(e) => QueryResponse::Error(e),
                    }
                })
            }
        };
        Response {
            request_id: request.request_id,
            body,
        }
    }

    /// Decodes one request frame, executes it, and encodes the response
    /// frame — the engine's entire byte-level surface. Undecodable frames
    /// are answered with [`ServiceError::MalformedRequest`] under request
    /// id 0 (none could be read), never dropped: a client always gets one
    /// response frame per request frame.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let response = match Request::from_bytes(frame) {
            Ok(request) => self.execute_request(&request),
            Err(e) => Response {
                request_id: 0,
                body: ResponseBody::Query(QueryResponse::Error(ServiceError::MalformedRequest {
                    reason: e.to_string(),
                })),
            },
        };
        response.to_bytes()
    }

    /// Serves a transport until the peer closes it: one response frame per
    /// request frame, in order. This is what turns the engine into a
    /// network service — bind any [`Transport`] (the in-process loopback, a
    /// future socket) and drive the full v2 vocabulary over bytes.
    pub fn serve(&self, transport: &dyn Transport) -> Result<(), TransportError> {
        while let Some(frame) = transport.recv()? {
            transport.send(&self.handle_frame(&frame))?;
        }
        Ok(())
    }

    /// Distributed enumeration over byte transports: partitions the graph's
    /// `KVCC-ENUM` worklist ([`ServiceEngine::partition_work`]), drives the
    /// items through the self-healing shard coordinator
    /// ([`crate::coordinator::run_fleet`]) with the default
    /// [`CoordinatorConfig`], and merges the responses. The result is
    /// byte-identical to [`ServiceEngine::execute`] answering
    /// [`QueryRequest::EnumerateKvccs`] on this engine — asserted by the
    /// `wire_parity` and `fleet_parity` suites — because work items ship
    /// loaded ids, shard outputs are disjoint by construction, and retried
    /// or locally degraded items land in per-item result slots (first
    /// completion wins).
    ///
    /// Each transport must be connected to a peer serving work items
    /// ([`crate::wire::transport::run_shard_worker`] or another engine's
    /// [`ServiceEngine::serve`] loop). Fleet telemetry (retries, requeues,
    /// quarantines, …) folds into the slot's [`SchedulingStats`]; use
    /// [`ServiceEngine::enumerate_sharded_with`] to tune the failure
    /// handling and receive the per-run counters.
    pub fn enumerate_sharded(
        &self,
        graph: GraphId,
        k: u32,
        shards: &[&dyn Transport],
    ) -> Result<Vec<KVertexConnectedComponent>, ServiceError> {
        let config = CoordinatorConfig {
            // The PR 4 entry point failed fast on an absent fleet; keep that
            // contract here and let the `_with` form opt into degradation.
            local_fallback: !shards.is_empty(),
            ..CoordinatorConfig::default()
        };
        self.enumerate_sharded_with(graph, k, shards, &config)
            .map(|outcome| outcome.components)
    }

    /// [`ServiceEngine::enumerate_sharded`] with explicit failure-handling
    /// configuration, returning the merged components *and* what the
    /// coordinator had to do to get them ([`FleetOutcome`]).
    pub fn enumerate_sharded_with(
        &self,
        graph: GraphId,
        k: u32,
        shards: &[&dyn Transport],
        config: &CoordinatorConfig,
    ) -> Result<FleetOutcome, ServiceError> {
        let items = self.partition_work(graph, k)?;
        let outcome = run_fleet(&items, k, shards, &self.config.enumeration, config)?;
        self.slot(graph)?.metrics.record_fleet(&outcome.stats);
        Ok(outcome)
    }

    /// Splits the initial `KVCC-ENUM` worklist of a loaded graph into
    /// self-contained, serialisable work items: the connected components of
    /// the k-core, each as a CSR subgraph plus its id map. Shipping every
    /// item through [`CsrWorkItem::to_bytes`] to a different process and
    /// merging the [`crate::run_work_item`] outputs reproduces the
    /// whole-graph enumeration exactly.
    ///
    /// Items come back **largest-first** by the enumeration cost model
    /// ([`kvcc::split_cost`]), so round-robin shipment starts the expensive
    /// items earliest. When the engine's enumeration options set a
    /// [`KvccOptions::split_threshold`], an item whose cost exceeds it is
    /// additionally *pre-split on the coordinator*: one `GLOBAL-CUT` +
    /// `OVERLAP-PARTITION` step replaces the oversized item with its pieces
    /// (recursively, until every piece fits or is a k-VCC), so a skewed
    /// graph hands a shard fleet balanced granules instead of one giant
    /// item. The union of the pieces' enumerations equals the original
    /// item's (the partition lemma), so the merge invariant is unaffected.
    pub fn partition_work(&self, graph: GraphId, k: u32) -> Result<Vec<CsrWorkItem>, ServiceError> {
        if k == 0 {
            return Err(ServiceError::Enumeration("k must be at least 1".into()));
        }
        let slot = self.slot(graph)?;
        let g = &slot.graph;
        let core = k_core_vertices(g, k as usize);
        // The core is already peeled; the mask supplies the component split.
        let view = SubgraphView::from_vertices(g, &core);
        let mut map = Vec::new();
        let mut pending: Vec<CsrWorkItem> = Vec::new();
        for component in view.components() {
            if component.len() <= k as usize {
                continue;
            }
            let sub = CsrGraph::extract_induced(g, &component, &mut map);
            // Work items cross the protocol boundary, so their id maps point
            // at loaded ids even when the slot stores the graph reordered.
            let to_original: Vec<VertexId> =
                component.iter().map(|&v| slot.to_external(v)).collect();
            pending.push(CsrWorkItem::new(sub, to_original));
        }

        let mut items = Vec::new();
        if let Some(threshold) = self.config.enumeration.split_threshold {
            // Pre-split oversized items on the coordinator. Each partition
            // strictly shrinks every piece (each side omits at least one
            // vertex of another side), so the loop terminates; pieces that
            // turn out to be k-VCCs (no cut) ship whole regardless of size.
            let mut stats = EnumerationStats::default();
            let mut scratch = CutScratch::new();
            while let Some(item) = pending.pop() {
                let sub = item.graph();
                if item_cost(&item, k) <= threshold || sub.num_vertices() <= k as usize {
                    items.push(item);
                    continue;
                }
                let outcome = global_cut_with_scratch(
                    sub,
                    k,
                    &self.config.enumeration,
                    &mut stats,
                    &mut scratch,
                )
                .map_err(|_| ServiceError::DeadlineExceeded)?;
                let Some(cut) = outcome.cut else {
                    items.push(item); // the item is a k-VCC: atomic by nature
                    continue;
                };
                let parts = kvcc::partition::overlap_partition(sub, &cut);
                if parts.len() < 2 {
                    // Defensive: an unsplittable cut ships the item whole
                    // rather than looping (the shard's enumerator owns the
                    // fallback recut logic).
                    items.push(item);
                    continue;
                }
                for part in parts {
                    if part.len() <= k as usize {
                        continue;
                    }
                    let piece = CsrGraph::extract_induced(sub, &part, &mut map);
                    let piece_to_original: Vec<VertexId> = part
                        .iter()
                        .map(|&local| item.to_original()[local as usize])
                        .collect();
                    pending.push(CsrWorkItem::new(piece, piece_to_original));
                }
            }
        } else {
            items = pending;
        }

        // Largest-first, ties broken by the id map for determinism.
        items.sort_by(|a, b| {
            item_cost(b, k)
                .cmp(&item_cost(a, k))
                .then_with(|| a.to_original().cmp(b.to_original()))
        });
        Ok(items)
    }

    fn slot(&self, graph: GraphId) -> Result<Arc<GraphSlot>, ServiceError> {
        self.graphs
            .lock()
            .unwrap()
            .get(graph.0 as usize)
            .and_then(|s| s.clone())
            .ok_or(ServiceError::UnknownGraph { graph })
    }

    /// The QoS front door of every query path — in-process calls, batch
    /// workers, framed bytes and sockets all funnel through here. Resolves
    /// the slot's mutation epoch, consults the result cache, coalesces
    /// identical in-flight executions, and runs admission control before
    /// [`ServiceEngine::execute_uncached`] does real work. Under the
    /// default (disabled) [`QosConfig`] this is a straight pass-through.
    fn execute_with(
        &self,
        request: &QueryRequest,
        scratch: &mut WorkerScratch,
        budget: &Budget,
    ) -> QueryResponse {
        let eligible = qos::cacheable(request);
        let use_cache = eligible && self.qos.config.cache_enabled();
        let use_flight = eligible && self.qos.config.coalesce;
        if !use_cache && !use_flight {
            return self.admit_and_execute(request, scratch, budget);
        }
        // The epoch embedded in the key is the whole invalidation story: an
        // update batch advances it, so entries minted at earlier epochs stop
        // being addressable and age out of the LRU.
        let epoch = match self.slot(request.graph()) {
            Ok(slot) => slot.epoch,
            Err(e) => return QueryResponse::Error(e),
        };
        let key = CacheKey::new(request, epoch);
        if use_cache {
            if let Some(hit) = self.qos.cache.get(&key) {
                return hit;
            }
        }
        if !use_flight {
            self.qos.cache.count_miss();
            let response = self.admit_and_execute(request, scratch, budget);
            self.cache_insert(&key, &response);
            return response;
        }
        match self.qos.flight.join(&key) {
            FlightOutcome::Coalesced(Ok(response)) => response,
            FlightOutcome::Coalesced(Err(_poisoned)) => {
                QueryResponse::Error(ServiceError::Enumeration(
                    "coalesced execution failed before publishing a response".into(),
                ))
            }
            FlightOutcome::Leader(leader) => {
                if use_cache {
                    self.qos.cache.count_miss();
                }
                let response = self.admit_and_execute(request, scratch, budget);
                // Waiters receive exactly what the leader produced — error
                // responses included (a failed execution propagates rather
                // than wedging anyone).
                leader.publish(response.clone());
                if use_cache {
                    self.cache_insert(&key, &response);
                }
                response
            }
        }
    }

    /// Publishes a response into the result cache — unless it is an error
    /// (never cached: the next caller should retry the real execution) or an
    /// update batch landed between key minting and execution, in which case
    /// the entry would describe a superseded epoch and is simply dropped.
    fn cache_insert(&self, key: &CacheKey, response: &QueryResponse) {
        if matches!(response, QueryResponse::Error(_)) {
            return;
        }
        match self.slot(key.graph) {
            Ok(slot) if slot.epoch == key.epoch => {}
            _ => return,
        }
        self.qos.cache.insert(
            key.clone(),
            response.clone(),
            qos::response_weight(response),
        );
    }

    /// Runs the admission controller (when armed) in front of the uncached
    /// executor: flow-running query kinds are priced with the shared
    /// scheduling cost model and shed with [`ServiceError::Overloaded`]
    /// when the controller predicts the request cannot meet its deadline
    /// hint or the bounded wait queue is full. Every admitted execution
    /// feeds its observed cost back into the controller's EWMA.
    fn admit_and_execute(
        &self,
        request: &QueryRequest,
        scratch: &mut WorkerScratch,
        budget: &Budget,
    ) -> QueryResponse {
        let Some(controller) = self.qos.admission.as_ref() else {
            return self.execute_uncached(request, scratch, budget);
        };
        let Some(cost) = self.request_cost(request) else {
            return self.execute_uncached(request, scratch, budget);
        };
        match controller.admit(cost, budget.deadline()) {
            Ok(_permit) => {
                let start = Instant::now();
                let response = self.execute_uncached(request, scratch, budget);
                controller.observe(cost, start.elapsed());
                response
            }
            Err(_shed) => QueryResponse::Error(ServiceError::Overloaded),
        }
    }

    /// The admission cost of a request under the shared scheduling model
    /// ([`kvcc::split_cost`] `= |E| + k·|V|`), or `None` for kinds that are
    /// not admission-gated — stats, index-lookup queries and page reads are
    /// too cheap to meaningfully price — or when the graph cannot be
    /// resolved (the executor owns that error).
    fn request_cost(&self, request: &QueryRequest) -> Option<u64> {
        let k = match *request {
            QueryRequest::EnumerateKvccs { k, .. } => k,
            QueryRequest::KvccsContaining { k, .. } => k,
            QueryRequest::GlobalCutProbe { k, .. } => k,
            QueryRequest::LocalConnectivity { limit, .. } => limit,
            _ => return None,
        };
        let slot = self.slot(request.graph()).ok()?;
        Some(split_cost(
            slot.graph.num_vertices(),
            slot.graph.num_edges(),
            k,
        ))
    }

    /// The real executor behind the QoS layer (the pre-v6 `execute_with`):
    /// resolves the slot and answers the request from the index or by
    /// direct enumeration, with no caching, coalescing or admission.
    fn execute_uncached(
        &self,
        request: &QueryRequest,
        scratch: &mut WorkerScratch,
        budget: &Budget,
    ) -> QueryResponse {
        let slot = match self.slot(request.graph()) {
            Ok(slot) => slot,
            Err(e) => return QueryResponse::Error(e),
        };
        let g = &slot.graph;
        // The engine's enumeration options with this request's budget
        // attached, so a deadline hint interrupts work *mid-run* instead of
        // merely gating its start. Index builds stay un-deadlined (a
        // half-built index helps nobody and the next query would rebuild).
        let options = || self.config.enumeration.clone().with_budget(budget.clone());
        // Vertex ids arriving in requests live in the loaded id space; the
        // slot may store the graph relabelled, so ids are translated on the
        // way in (after range checks — the permutation preserves `n`) and
        // every id-carrying result is translated back before it leaves.
        match *request {
            QueryRequest::EnumerateKvccs { k, .. } => {
                // A depth-capped index has never enumerated levels beyond its
                // cap, so only answer from it when it covers `k`.
                if let Some(index) = slot.index.get().filter(|ix| k >= 1 && ix.covers(k)) {
                    return QueryResponse::Components(
                        slot.components_to_external(index.components_at(k).to_vec()),
                    );
                }
                match enumerate_kvccs(g, k, &options()) {
                    Ok(result) => {
                        slot.metrics.record(result.stats());
                        QueryResponse::Components(
                            slot.components_to_external(result.components().to_vec()),
                        )
                    }
                    Err(KvccError::Interrupted { stats }) => {
                        // The partial statistics are folded into the slot's
                        // scheduling telemetry (`cancelled_runs` included);
                        // the wire answer is the stable deadline code.
                        slot.metrics.record(&stats);
                        QueryResponse::Error(ServiceError::DeadlineExceeded)
                    }
                    Err(e) => QueryResponse::Error(e.into()),
                }
            }
            QueryRequest::KvccsContaining { seed, k, .. } => {
                if seed as usize >= g.num_vertices() {
                    return QueryResponse::Error(ServiceError::VertexOutOfRange { vertex: seed });
                }
                let seed = slot.to_internal(seed);
                match slot.index_or_build(&self.config) {
                    Ok(ix) if ix.covers(k) => match ix.kvccs_containing(seed, k) {
                        Ok(components) => {
                            QueryResponse::Components(slot.components_to_external(components))
                        }
                        Err(e) => QueryResponse::Error(e.into()),
                    },
                    // Beyond the index cap: fall back to the direct localized
                    // query instead of wrongly answering "no components".
                    Ok(_) => match kvcc::kvccs_containing(g, seed, k, &options()) {
                        Ok(components) => {
                            QueryResponse::Components(slot.components_to_external(components))
                        }
                        Err(KvccError::Interrupted { stats }) => {
                            // Same telemetry contract as the EnumerateKvccs
                            // arm: a cancelled direct enumeration must show
                            // up in the slot's scheduling counters.
                            slot.metrics.record(&stats);
                            QueryResponse::Error(ServiceError::DeadlineExceeded)
                        }
                        Err(e) => QueryResponse::Error(e.into()),
                    },
                    Err(e) => QueryResponse::Error(e),
                }
            }
            QueryRequest::MaxConnectivity { u, v, .. } => {
                for vertex in [u, v] {
                    if vertex as usize >= g.num_vertices() {
                        return QueryResponse::Error(ServiceError::VertexOutOfRange { vertex });
                    }
                }
                let (u, v) = (slot.to_internal(u), slot.to_internal(v));
                match slot
                    .index_or_build(&self.config)
                    .and_then(|ix| ix.max_connectivity(u, v).map_err(ServiceError::from))
                {
                    Ok(value) => QueryResponse::Connectivity(value),
                    Err(e) => QueryResponse::Error(e),
                }
            }
            QueryRequest::VertexConnectivityNumber { v, .. } => {
                if v as usize >= g.num_vertices() {
                    return QueryResponse::Error(ServiceError::VertexOutOfRange { vertex: v });
                }
                let v = slot.to_internal(v);
                match slot.index_or_build(&self.config) {
                    Ok(ix) => QueryResponse::Connectivity(ix.max_connectivity_of(v)),
                    Err(e) => QueryResponse::Error(e),
                }
            }
            QueryRequest::GlobalCutProbe { k, .. } => {
                if k == 0 || g.num_vertices() == 0 {
                    // No cut can have fewer than zero vertices / nothing to cut.
                    return QueryResponse::Cut(None);
                }
                if !is_connected(g) {
                    // The empty set already separates a disconnected graph.
                    return QueryResponse::Cut(Some(Vec::new()));
                }
                let outcome = match global_cut_with_scratch(
                    g,
                    k,
                    &options(),
                    &mut scratch.stats,
                    &mut scratch.cut,
                ) {
                    Ok(outcome) => outcome,
                    Err(_) => return QueryResponse::Error(ServiceError::DeadlineExceeded),
                };
                QueryResponse::Cut(outcome.cut.map(|cut| {
                    let mut cut: Vec<VertexId> =
                        cut.into_iter().map(|v| slot.to_external(v)).collect();
                    cut.sort_unstable();
                    cut
                }))
            }
            QueryRequest::LocalConnectivity { u, v, limit, .. } => {
                for vertex in [u, v] {
                    if vertex as usize >= g.num_vertices() {
                        return QueryResponse::Error(ServiceError::VertexOutOfRange { vertex });
                    }
                }
                let (u, v) = (slot.to_internal(u), slot.to_internal(v));
                scratch.flow.rebuild(g);
                let value = match scratch.flow.local_connectivity(g, u, v, limit) {
                    LocalConnectivity::AtLeast(value) => value,
                    LocalConnectivity::Cut(cut) => cut.len() as u32,
                };
                QueryResponse::Connectivity(value)
            }
            QueryRequest::GraphStats { .. } => {
                let (indexed, max_k, depth_limit) = match slot.index.get() {
                    Some(ix) => (true, ix.max_k(), ix.depth_limit()),
                    None => (false, 0, None),
                };
                QueryResponse::Stats {
                    num_vertices: g.num_vertices(),
                    num_edges: g.num_edges(),
                    indexed,
                    max_k,
                    // The protocol reports the engine's layout policy and the
                    // index build cap so clients can tell a depth-capped
                    // index from a complete one instead of silently
                    // under-reading connectivity values saturated at the cap.
                    ordering: self.config.ordering,
                    depth_limit,
                    scheduling: slot.metrics.snapshot(),
                    epoch: slot.epoch,
                    qos: self.qos.snapshot(),
                }
            }
            QueryRequest::TopKComponents {
                rank_by,
                page_size,
                ref cursor,
                ..
            } => {
                if page_size == 0 {
                    return QueryResponse::Error(ServiceError::MalformedRequest {
                        reason: "page_size must be at least 1".into(),
                    });
                }
                let ix = match slot.index_or_build(&self.config) {
                    Ok(ix) => ix,
                    Err(e) => return QueryResponse::Error(e),
                };
                let graph = request.graph();
                let num_nodes = ix.num_nodes() as u64;
                let invalid = |reason: &str| {
                    QueryResponse::Error(ServiceError::InvalidCursor {
                        reason: reason.into(),
                    })
                };
                let offset = match cursor {
                    None => 0,
                    Some(bytes) => match PageCursor::from_bytes(bytes) {
                        Ok(cursor) => {
                            if cursor.graph != graph {
                                return invalid("cursor was issued for a different graph");
                            }
                            if cursor.rank_by != rank_by {
                                return invalid("cursor was issued for a different ranking");
                            }
                            if cursor.epoch != slot.epoch {
                                // The graph moved on (an update batch landed
                                // between pages); resuming the old page walk
                                // would silently mix two forests.
                                return invalid("cursor was issued for an older graph epoch");
                            }
                            if cursor.num_nodes != num_nodes {
                                return invalid("cursor does not match this index");
                            }
                            if cursor.offset > num_nodes {
                                return invalid("cursor offset is out of range");
                            }
                            cursor.offset
                        }
                        Err(reason) => return invalid(reason),
                    },
                };
                // Pages come from the slot's canonical external-space
                // ranking, so they are identical under every ordering
                // policy; the index supplies the per-node metadata.
                let topk = slot.topk_orders(ix);
                let order = &topk.orders[rank_by.code() as usize];
                let start = (offset as usize).min(order.len());
                let end = start.saturating_add(page_size as usize).min(order.len());
                let entries: Vec<RankedEntry> = order[start..end]
                    .iter()
                    .map(|&id| RankedEntry {
                        k: ix.node_k(id).expect("node id in range"),
                        internal_edges: ix.internal_edges_of(id).expect("node id in range"),
                        component: topk.external[id as usize].clone(),
                    })
                    .collect();
                let consumed = offset + entries.len() as u64;
                let next_cursor = (consumed < num_nodes).then(|| {
                    PageCursor {
                        graph,
                        rank_by,
                        offset: consumed,
                        num_nodes,
                        epoch: slot.epoch,
                    }
                    .to_bytes()
                });
                QueryResponse::Page {
                    entries,
                    next_cursor,
                }
            }
        }
    }
}

/// Structural spot-check of a deserialised index against a graph's
/// adjacency: every member of a level-`k` component must have at least
/// `min(k, |C|−1)` neighbours inside the component (a necessary condition of
/// k-vertex connectivity), and the component's persisted internal edge count
/// — the ranking metadata — must equal the actual count in the graph.
/// Linear in the total member count times degree; a forest persisted from a
/// different graph or id space essentially never satisfies it.
fn index_matches_graph<G: GraphView>(csr: &G, index: &ConnectivityIndex) -> bool {
    let mut inside = kvcc_graph::BitSet::new(csr.num_vertices());
    // The ranked listing visits every forest node exactly once with its
    // persisted metadata attached.
    for entry in index.ranked_components(kvcc::index::RankBy::Size, index.num_nodes()) {
        let members = entry.component.vertices();
        for &v in members {
            inside.insert(v as usize);
        }
        let need = (entry.k as usize).min(members.len().saturating_sub(1));
        let mut directed_inside = 0u64;
        let mut ok = true;
        for &v in members {
            let inside_degree = csr
                .neighbors(v)
                .iter()
                .filter(|&&w| inside.contains(w as usize))
                .count();
            directed_inside += inside_degree as u64;
            ok &= inside_degree >= need;
        }
        for &v in members {
            inside.remove(v as usize);
        }
        // Also verify the persisted ranking metadata against the graph, so
        // a restored index can never rank on fabricated densities.
        if !ok || directed_inside / 2 != entry.internal_edges {
            return false;
        }
    }
    true
}

/// The scheduling cost of a shard work item under the shared cost model.
fn item_cost(item: &CsrWorkItem, k: u32) -> u64 {
    split_cost(item.graph().num_vertices(), item.graph().num_edges(), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_work_item;
    use kvcc::KVertexConnectedComponent;
    use kvcc_graph::{UndirectedGraph, VertexId};

    /// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
    fn mixed_graph() -> UndirectedGraph {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(9, edges).unwrap()
    }

    fn engine_with_graph() -> (ServiceEngine, GraphId) {
        let engine = ServiceEngine::new(EngineConfig::default());
        let id = engine.load_graph("mixed", &mixed_graph());
        (engine, id)
    }

    #[test]
    fn load_query_unload_lifecycle() {
        let (engine, id) = engine_with_graph();
        assert_eq!(engine.graph_count(), 1);
        assert_eq!(engine.graph_name(id).unwrap(), "mixed");
        assert!(matches!(
            engine.execute(&QueryRequest::GraphStats { graph: id }),
            QueryResponse::Stats {
                num_vertices: 9,
                indexed: false,
                ..
            }
        ));
        assert!(engine.unload(id));
        assert!(!engine.unload(id));
        assert_eq!(engine.graph_count(), 0);
        assert!(matches!(
            engine.execute(&QueryRequest::GraphStats { graph: id }),
            QueryResponse::Error(ServiceError::UnknownGraph { .. })
        ));
    }

    #[test]
    fn batch_answers_match_direct_library_calls() {
        let (engine, id) = engine_with_graph();
        let g = mixed_graph();
        let requests: Vec<QueryRequest> = (0..g.num_vertices() as VertexId)
            .map(|seed| QueryRequest::KvccsContaining {
                graph: id,
                seed,
                k: 2,
            })
            .collect();
        let responses = engine.execute_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        for (seed, response) in responses.iter().enumerate() {
            let expected =
                kvcc::kvccs_containing(&g, seed as VertexId, 2, &KvccOptions::default()).unwrap();
            assert_eq!(
                response,
                &QueryResponse::Components(expected),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn enumerate_uses_the_index_once_built() {
        let (engine, id) = engine_with_graph();
        let before = engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 });
        engine.build_index(id).unwrap();
        let after = engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 });
        assert_eq!(before, after);
        assert!(matches!(
            engine.execute(&QueryRequest::GraphStats { graph: id }),
            QueryResponse::Stats {
                indexed: true,
                max_k: 3,
                ..
            }
        ));
    }

    #[test]
    fn connectivity_queries() {
        let (engine, id) = engine_with_graph();
        assert_eq!(
            engine.execute(&QueryRequest::MaxConnectivity {
                graph: id,
                u: 5,
                v: 8
            }),
            QueryResponse::Connectivity(3)
        );
        assert_eq!(
            engine.execute(&QueryRequest::VertexConnectivityNumber { graph: id, v: 2 }),
            QueryResponse::Connectivity(2)
        );
        assert_eq!(
            engine.execute(&QueryRequest::LocalConnectivity {
                graph: id,
                u: 0,
                v: 3,
                limit: 5,
            }),
            QueryResponse::Connectivity(1),
            "vertex 2 separates the two triangles"
        );
        assert!(matches!(
            engine.execute(&QueryRequest::VertexConnectivityNumber { graph: id, v: 99 }),
            QueryResponse::Error(ServiceError::VertexOutOfRange { vertex: 99 })
        ));
    }

    #[test]
    fn global_cut_probe_runs_on_worker_scratch() {
        let engine = ServiceEngine::new(EngineConfig::default());
        // The mixed graph is disconnected: the empty set is already a cut.
        let mixed = engine.load_graph("mixed", &mixed_graph());
        assert_eq!(
            engine.execute(&QueryRequest::GlobalCutProbe { graph: mixed, k: 2 }),
            QueryResponse::Cut(Some(Vec::new()))
        );
        // Two triangles glued at vertex 2: {2} is the only 1-vertex cut.
        let glued = engine.load_graph(
            "glued",
            &UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap(),
        );
        match engine.execute(&QueryRequest::GlobalCutProbe { graph: glued, k: 2 }) {
            QueryResponse::Cut(Some(cut)) => assert_eq!(cut, vec![2]),
            other => panic!("expected a cut, got {other:?}"),
        }
        // A K4 has no cut below 3.
        let k4 = engine.load_graph(
            "k4",
            &UndirectedGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
                .unwrap(),
        );
        assert_eq!(
            engine.execute(&QueryRequest::GlobalCutProbe { graph: k4, k: 3 }),
            QueryResponse::Cut(None)
        );
    }

    #[test]
    fn depth_capped_index_never_underreports_components() {
        let engine = ServiceEngine::new(EngineConfig {
            index_max_k: Some(1),
            ..EngineConfig::default()
        });
        let id = engine.load_graph("mixed", &mixed_graph());
        engine.build_index(id).unwrap();
        let reference = ServiceEngine::new(EngineConfig::default());
        let ref_id = reference.load_graph("mixed", &mixed_graph());
        // Queries beyond the cap must fall back to the direct paths, not
        // answer "no components" from the truncated forest.
        for k in 2..=3u32 {
            for seed in 0..9 {
                let capped = engine.execute(&QueryRequest::KvccsContaining { graph: id, seed, k });
                let full = reference.execute(&QueryRequest::KvccsContaining {
                    graph: ref_id,
                    seed,
                    k,
                });
                assert_eq!(capped, full, "seed {seed}, k {k}");
            }
            assert_eq!(
                engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }),
                reference.execute(&QueryRequest::EnumerateKvccs { graph: ref_id, k }),
                "k {k}"
            );
        }
        // Connectivity values saturate at the cap (documented semantics).
        assert_eq!(
            engine.execute(&QueryRequest::VertexConnectivityNumber { graph: id, v: 6 }),
            QueryResponse::Connectivity(1)
        );
    }

    /// Every request shape against the mixed graph, covering hits, misses
    /// and out-of-range errors.
    fn probe_requests(id: GraphId) -> Vec<QueryRequest> {
        let mut requests = vec![
            QueryRequest::GraphStats { graph: id },
            QueryRequest::GlobalCutProbe { graph: id, k: 2 },
            QueryRequest::VertexConnectivityNumber { graph: id, v: 6 },
            QueryRequest::VertexConnectivityNumber { graph: id, v: 99 },
            QueryRequest::LocalConnectivity {
                graph: id,
                u: 0,
                v: 3,
                limit: 5,
            },
        ];
        for k in 1..=3u32 {
            requests.push(QueryRequest::EnumerateKvccs { graph: id, k });
            for seed in 0..9 {
                requests.push(QueryRequest::KvccsContaining { graph: id, seed, k });
            }
        }
        for u in 0..9u32 {
            for v in 0..9u32 {
                requests.push(QueryRequest::MaxConnectivity { graph: id, u, v });
            }
        }
        // First pages of every ranking: identical across ordering policies
        // because the slot ranks in external space.
        for rank_by in RankBy::ALL {
            requests.push(QueryRequest::TopKComponents {
                graph: id,
                rank_by,
                page_size: 4,
                cursor: None,
            });
        }
        requests
    }

    #[test]
    fn every_ordering_policy_answers_identically() {
        let baseline = ServiceEngine::new(EngineConfig::default());
        let base_id = baseline.load_graph("mixed", &mixed_graph());
        let expected = baseline.execute_batch(&probe_requests(base_id));
        for ordering in [
            OrderingPolicy::DegreeDescending,
            OrderingPolicy::Bfs,
            OrderingPolicy::Hybrid,
        ] {
            let engine = ServiceEngine::new(EngineConfig {
                ordering,
                ..EngineConfig::default()
            });
            let id = engine.load_graph("mixed", &mixed_graph());
            let mut responses = engine.execute_batch(&probe_requests(id));
            // `Stats` truthfully reports each engine's layout policy — the
            // one field that is *supposed* to differ. Normalise it; every
            // other byte of every response must be identical.
            for response in &mut responses {
                if let QueryResponse::Stats { ordering, .. } = response {
                    *ordering = OrderingPolicy::Preserve;
                }
            }
            assert_eq!(responses, expected, "{ordering:?}");
        }
    }

    #[test]
    fn reordered_partition_work_ships_loaded_ids() {
        let engine = ServiceEngine::new(EngineConfig {
            ordering: OrderingPolicy::Hybrid,
            ..EngineConfig::default()
        });
        let id = engine.load_graph("mixed", &mixed_graph());
        let g = mixed_graph();
        for k in 1..=3u32 {
            let items = engine.partition_work(id, k).unwrap();
            let mut merged: Vec<KVertexConnectedComponent> = Vec::new();
            for item in &items {
                let shipped = CsrWorkItem::from_bytes(&item.to_bytes()).unwrap();
                merged.extend(run_work_item(&shipped, k, &KvccOptions::default()).unwrap());
            }
            merged.sort();
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(merged, direct.components().to_vec(), "k = {k}");
        }
    }

    #[test]
    fn persisted_index_survives_a_restart() {
        for ordering in [OrderingPolicy::Preserve, OrderingPolicy::Hybrid] {
            let config = EngineConfig {
                ordering,
                ..EngineConfig::default()
            };
            let engine = ServiceEngine::new(config.clone());
            let id = engine.load_graph("mixed", &mixed_graph());
            let bytes = engine.index_bytes(id).unwrap();
            let expected = engine.execute_batch(&probe_requests(id));

            // "Restart": a fresh engine with the same policy restores the
            // persisted index instead of rebuilding the hierarchy.
            let restarted = ServiceEngine::new(config);
            let new_id = restarted.load_graph("mixed", &mixed_graph());
            restarted.install_index_bytes(new_id, &bytes).unwrap();
            assert!(matches!(
                restarted.execute(&QueryRequest::GraphStats { graph: new_id }),
                QueryResponse::Stats { indexed: true, .. }
            ));
            let responses = restarted.execute_batch(&probe_requests(new_id));
            assert_eq!(responses, expected, "{ordering:?}");

            // A second install is refused; corrupted buffers are rejected.
            assert!(restarted.install_index_bytes(new_id, &bytes).is_err());
            let other = restarted.load_graph("mixed", &mixed_graph());
            assert!(restarted.install_index_bytes(other, &bytes[..5]).is_err());
            // A mismatched graph is rejected too.
            let small = restarted.load_graph(
                "small",
                &UndirectedGraph::from_edges(3, vec![(0, 1), (1, 2)]).unwrap(),
            );
            assert!(restarted.install_index_bytes(small, &bytes).is_err());
        }
    }

    #[test]
    fn cross_policy_index_install_is_rejected() {
        // An index persisted under Preserve speaks loaded ids; a
        // degree-reordered slot stores different internal ids, so the
        // structural spot-check must refuse the install instead of letting
        // every subsequent query answer wrong.
        let preserve = ServiceEngine::new(EngineConfig::default());
        let a = preserve.load_graph("mixed", &mixed_graph());
        let bytes = preserve.index_bytes(a).unwrap();
        let reordered = ServiceEngine::new(EngineConfig {
            ordering: OrderingPolicy::DegreeDescending,
            ..EngineConfig::default()
        });
        let b = reordered.load_graph("mixed", &mixed_graph());
        assert!(reordered.install_index_bytes(b, &bytes).is_err());
        // An index from an unrelated graph of the same size is refused too.
        let other = preserve.load_graph(
            "path",
            &UndirectedGraph::from_edges(9, (0..8u32).map(|i| (i, i + 1))).unwrap(),
        );
        assert!(preserve.install_index_bytes(other, &bytes).is_err());
    }

    #[test]
    fn execute_request_echoes_ids_and_enforces_deadlines() {
        use crate::protocol::{Request, RequestBody, Response, ResponseBody};
        let (engine, id) = engine_with_graph();
        // A normal envelope: id echoed, body dispatched.
        let response =
            engine.execute_request(&Request::query(77, QueryRequest::GraphStats { graph: id }));
        assert_eq!(response.request_id, 77);
        assert!(matches!(
            response.body,
            ResponseBody::Query(QueryResponse::Stats { .. })
        ));
        // A 0 ms deadline has always expired by the time work would run:
        // single queries, every batch position, and work items all report
        // DeadlineExceeded instead of executing.
        let expired = Request {
            request_id: 1,
            deadline_hint_ms: Some(0),
            body: RequestBody::Batch(vec![
                QueryRequest::GraphStats { graph: id },
                QueryRequest::EnumerateKvccs { graph: id, k: 2 },
            ]),
        };
        match engine.execute_request(&expired).body {
            ResponseBody::Batch(responses) => {
                assert_eq!(responses.len(), 2);
                for r in responses {
                    assert_eq!(r, QueryResponse::Error(ServiceError::DeadlineExceeded));
                }
            }
            other => panic!("expected a batch, got {other:?}"),
        }
        // The frame path reports undecodable requests instead of dropping.
        let garbage = engine.handle_frame(b"not a frame");
        let decoded = Response::from_bytes(&garbage).unwrap();
        assert_eq!(decoded.request_id, 0);
        match decoded.body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 7),
            other => panic!("expected a malformed-request error, got {other:?}"),
        }
    }

    #[test]
    fn stats_reports_ordering_and_index_coverage() {
        let engine = ServiceEngine::new(EngineConfig {
            index_max_k: Some(1),
            ordering: OrderingPolicy::Hybrid,
            ..EngineConfig::default()
        });
        let id = engine.load_graph("mixed", &mixed_graph());
        // Before any index: coverage unknown, policy still reported.
        assert!(matches!(
            engine.execute(&QueryRequest::GraphStats { graph: id }),
            QueryResponse::Stats {
                indexed: false,
                ordering: OrderingPolicy::Hybrid,
                depth_limit: None,
                ..
            }
        ));
        engine.build_index(id).unwrap();
        // A depth-capped index is detectable: clients see the cap instead of
        // silently under-reading saturated connectivity values.
        assert!(matches!(
            engine.execute(&QueryRequest::GraphStats { graph: id }),
            QueryResponse::Stats {
                indexed: true,
                max_k: 1,
                ordering: OrderingPolicy::Hybrid,
                depth_limit: Some(1),
                ..
            }
        ));
    }

    #[test]
    fn compressed_engine_answers_identically_and_recycles_buffers() {
        let baseline = ServiceEngine::new(EngineConfig::default());
        let base_id = baseline.load_graph("mixed", &mixed_graph());
        let expected = baseline.execute_batch(&probe_requests(base_id));

        let engine = ServiceEngine::new(EngineConfig {
            compression: true,
            ..EngineConfig::default()
        });
        let id = engine.load_graph("mixed", &mixed_graph());
        let responses = engine.execute_batch(&probe_requests(id));
        assert_eq!(responses, expected);

        // Hot-swap: unloading drops the slot (and its decode cache) into the
        // engine-wide pool; the replacement decodes from recycled capacity.
        assert!(engine.unload(id));
        let (pooled, _) = engine.decode_pool_stats();
        assert!(pooled > 0, "unload must park the decode cache");
        let id2 = engine.load_graph("mixed", &mixed_graph());
        // Mirror the second load on the baseline: page cursors embed the
        // graph handle, so both engines must speak from the same slot id.
        assert!(baseline.unload(base_id));
        let base_id2 = baseline.load_graph("mixed", &mixed_graph());
        assert_eq!(id2, base_id2);
        let responses = engine.execute_batch(&probe_requests(id2));
        assert_eq!(responses, baseline.execute_batch(&probe_requests(base_id2)));
        let (_, recycled) = engine.decode_pool_stats();
        assert!(recycled > 0, "the second load must reuse pooled buffers");
    }

    #[test]
    fn direct_enumerations_surface_scheduling_stats() {
        let (engine, id) = engine_with_graph();
        // No index yet: this enumerates directly and must count work items.
        let _ = engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 });
        match engine.execute(&QueryRequest::GraphStats { graph: id }) {
            QueryResponse::Stats { scheduling, .. } => {
                assert!(scheduling.work_items > 0);
                assert_eq!(scheduling.cancelled_runs, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A pre-expired deadline on the same query is interrupted and
        // counted; the engine stays fully usable afterwards.
        let expired = Request {
            request_id: 1,
            deadline_hint_ms: Some(0),
            body: RequestBody::Query(QueryRequest::EnumerateKvccs { graph: id, k: 2 }),
        };
        match engine.execute_request(&expired).body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 5),
            other => panic!("expected a deadline error, got {other:?}"),
        }
        let ok = engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 });
        assert!(matches!(ok, QueryResponse::Components(_)));
    }

    #[test]
    fn presplit_partition_work_reproduces_the_enumeration() {
        // A split threshold of 0 forces the coordinator to pre-split every
        // item down to k-VCC granules; the merged shard outputs must still
        // equal the whole-graph enumeration, and the listing must come back
        // largest-first under the cost model.
        let engine = ServiceEngine::new(EngineConfig {
            enumeration: KvccOptions::default().with_split_threshold(Some(0)),
            ..EngineConfig::default()
        });
        let id = engine.load_graph("mixed", &mixed_graph());
        let g = mixed_graph();
        for k in 1..=3u32 {
            let items = engine.partition_work(id, k).unwrap();
            let costs: Vec<u64> = items.iter().map(|item| super::item_cost(item, k)).collect();
            assert!(
                costs.windows(2).all(|w| w[0] >= w[1]),
                "largest-first: {costs:?}"
            );
            let mut merged: Vec<KVertexConnectedComponent> = Vec::new();
            for item in &items {
                let shipped = CsrWorkItem::from_bytes(&item.to_bytes()).unwrap();
                merged.extend(run_work_item(&shipped, k, &KvccOptions::default()).unwrap());
            }
            // No dedup: pieces must partition the k-VCC set exactly (each
            // k-VCC has a non-cut vertex on exactly one side of every cut),
            // which is the invariant `enumerate_sharded` relies on.
            merged.sort();
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(merged, direct.components().to_vec(), "k = {k}");
        }
    }

    #[test]
    fn partitioned_work_items_reproduce_the_enumeration() {
        let (engine, id) = engine_with_graph();
        let g = mixed_graph();
        for k in 1..=3u32 {
            let items = engine.partition_work(id, k).unwrap();
            let mut merged: Vec<KVertexConnectedComponent> = Vec::new();
            for item in &items {
                // Ship through bytes, as a shard would receive it.
                let shipped = CsrWorkItem::from_bytes(&item.to_bytes()).unwrap();
                merged.extend(run_work_item(&shipped, k, &KvccOptions::default()).unwrap());
            }
            merged.sort();
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(merged, direct.components().to_vec(), "k = {k}");
        }
        assert!(engine.partition_work(id, 0).is_err());
    }

    /// Writes the mixed graph to disk both as a messy edge list (one
    /// duplicate line, one self-loop, raw ids in first-appearance order so
    /// loaded ids match the in-memory graph) and as an aligned `KCSR` file.
    fn mixed_graph_files(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let edges = dir.join(format!("kvcc_engine_{tag}_{pid}.txt"));
        let kcsr = dir.join(format!("kvcc_engine_{tag}_{pid}.kcsr"));
        let g = mixed_graph();
        let mut text = String::from("# mixed graph, messy form\n");
        for v in 0..g.num_vertices() as VertexId {
            for &w in g.neighbors(v) {
                if v < w {
                    text.push_str(&format!("{v} {w}\n"));
                }
            }
        }
        text.push_str("0 1\n3 3\n");
        std::fs::write(&edges, text).unwrap();
        kvcc_graph::write_kcsr_file(&CsrGraph::from_view(&g), &kcsr).unwrap();
        (edges, kcsr)
    }

    #[test]
    fn load_from_path_streams_borrows_and_answers_identically() {
        let (edge_path, kcsr_path) = mixed_graph_files("load");
        let (baseline, base_id) = engine_with_graph();
        let expected = baseline.execute_batch(&probe_requests(base_id));

        // Edge-list streaming: diagnostics surface the messy lines, the
        // slot answers exactly like the in-memory load.
        let engine = ServiceEngine::new(EngineConfig::default());
        let streamed = engine
            .load_from_path("streamed", &edge_path, LoadFormat::EdgeList)
            .unwrap();
        assert_eq!(streamed.num_vertices, 9);
        assert_eq!(streamed.num_edges, 12);
        assert_eq!(streamed.self_loops, 1);
        assert_eq!(streamed.duplicates, 1);
        assert!(!streamed.zero_copy);
        assert_eq!(
            engine.execute_batch(&probe_requests(streamed.graph)),
            expected
        );

        // KCSR under the default policy (Preserve, uncompressed): the slot
        // borrows the validated file bytes zero-copy.
        let borrowed = engine
            .load_from_path("borrowed", &kcsr_path, LoadFormat::Kcsr)
            .unwrap();
        assert!(borrowed.zero_copy);
        assert_eq!(borrowed.num_vertices, 9);
        assert_eq!(borrowed.num_edges, 12);
        // Page cursors embed the slot id, so probe a fresh engine whose
        // first slot is the borrowed one.
        let fresh = ServiceEngine::new(EngineConfig::default());
        let fresh_borrowed = fresh
            .load_from_path("borrowed", &kcsr_path, LoadFormat::Kcsr)
            .unwrap();
        assert_eq!(
            fresh.execute_batch(&probe_requests(fresh_borrowed.graph)),
            expected
        );

        // KCSR under a reordering (or compressing) policy must decode: the
        // stored layout is not the file layout, so borrowing is off.
        for config in [
            EngineConfig {
                ordering: OrderingPolicy::Hybrid,
                ..EngineConfig::default()
            },
            EngineConfig {
                compression: true,
                ..EngineConfig::default()
            },
        ] {
            // Stats report the policy, so compare against a same-config
            // engine loaded in memory rather than the Preserve baseline.
            let config_baseline = ServiceEngine::new(config.clone());
            let config_base = config_baseline.load_graph("mixed", &mixed_graph());
            let decoded_engine = ServiceEngine::new(config);
            let decoded = decoded_engine
                .load_from_path("decoded", &kcsr_path, LoadFormat::Kcsr)
                .unwrap();
            assert!(!decoded.zero_copy);
            assert_eq!(
                decoded_engine.execute_batch(&probe_requests(decoded.graph)),
                config_baseline.execute_batch(&probe_requests(config_base))
            );
        }

        std::fs::remove_file(&edge_path).ok();
        std::fs::remove_file(&kcsr_path).ok();
    }

    #[test]
    fn load_from_path_failures_are_clean_errors() {
        let engine = ServiceEngine::new(EngineConfig::default());
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // Missing files, either format.
        let missing = dir.join(format!("kvcc_engine_missing_{pid}.txt"));
        for format in [LoadFormat::EdgeList, LoadFormat::Kcsr] {
            match engine.load_from_path("missing", &missing, format) {
                Err(ServiceError::LoadFailed { .. }) => {}
                other => panic!("expected LoadFailed, got {other:?}"),
            }
        }

        // A malformed edge list reports the offending line.
        let bad = dir.join(format!("kvcc_engine_bad_{pid}.txt"));
        std::fs::write(&bad, "0 1\n1 two\n").unwrap();
        match engine.load_from_path("bad", &bad, LoadFormat::EdgeList) {
            Err(ServiceError::LoadFailed { reason }) => {
                assert!(reason.contains("line 2"), "{reason}");
            }
            other => panic!("expected LoadFailed, got {other:?}"),
        }
        std::fs::remove_file(&bad).ok();

        // A truncated KCSR file fails validation on both the borrow and the
        // decode path.
        let (_edges, kcsr_path) = mixed_graph_files("trunc");
        std::fs::remove_file(&_edges).ok();
        let bytes = std::fs::read(&kcsr_path).unwrap();
        let truncated = dir.join(format!("kvcc_engine_trunc_{pid}.cut"));
        std::fs::write(&truncated, &bytes[..bytes.len() - 3]).unwrap();
        std::fs::remove_file(&kcsr_path).ok();
        for config in [
            EngineConfig::default(),
            EngineConfig {
                ordering: OrderingPolicy::Hybrid,
                ..EngineConfig::default()
            },
        ] {
            let e = ServiceEngine::new(config);
            match e.load_from_path("trunc", &truncated, LoadFormat::Kcsr) {
                Err(ServiceError::LoadFailed { .. }) => {}
                other => panic!("expected LoadFailed, got {other:?}"),
            }
        }
        std::fs::remove_file(&truncated).ok();

        // Nothing is partially loaded on failure.
        assert_eq!(engine.graph_count(), 0);
    }

    #[test]
    fn load_graph_requests_flow_through_the_envelope() {
        let (edge_path, kcsr_path) = mixed_graph_files("envelope");
        let engine = ServiceEngine::new(EngineConfig::default());
        let request = Request {
            request_id: 21,
            deadline_hint_ms: None,
            body: RequestBody::LoadGraph {
                name: "mixed".into(),
                path: edge_path.to_string_lossy().into_owned(),
                format: LoadFormat::EdgeList,
            },
        };
        // Through bytes, as a remote client would drive it.
        let response = Response::from_bytes(&engine.handle_frame(&request.to_bytes())).unwrap();
        assert_eq!(response.request_id, 21);
        match response.body {
            ResponseBody::Query(QueryResponse::Loaded {
                graph,
                num_vertices: 9,
                num_edges: 12,
                self_loops: 1,
                duplicates: 1,
                zero_copy: false,
            }) => {
                assert_eq!(engine.graph_name(graph).unwrap(), "mixed");
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        // The zero-copy bit is visible on the wire too.
        let request = Request {
            request_id: 22,
            deadline_hint_ms: None,
            body: RequestBody::LoadGraph {
                name: "borrowed".into(),
                path: kcsr_path.to_string_lossy().into_owned(),
                format: LoadFormat::Kcsr,
            },
        };
        let response = Response::from_bytes(&engine.handle_frame(&request.to_bytes())).unwrap();
        assert!(matches!(
            response.body,
            ResponseBody::Query(QueryResponse::Loaded {
                zero_copy: true,
                ..
            })
        ));
        std::fs::remove_file(&edge_path).ok();
        std::fs::remove_file(&kcsr_path).ok();
    }

    #[test]
    fn update_batches_swap_the_graph_and_repair_the_index() {
        let (engine, id) = engine_with_graph();
        engine.build_index(id).unwrap();
        assert_eq!(engine.graph_epoch(id).unwrap(), 0);

        // Bridge the two clusters into one 3-connected region: make vertex 2
        // a fourth member of the K4's neighbourhood.
        let updates = [
            EdgeUpdate::insert(2, 5),
            EdgeUpdate::insert(2, 6),
            EdgeUpdate::insert(2, 7),
            EdgeUpdate::insert(2, 5), // redundant: tolerated no-op
        ];
        let report = engine.apply_updates(id, &updates).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(engine.graph_epoch(id).unwrap(), 1);

        // The repaired engine answers exactly like an engine that loaded the
        // post-update graph from scratch, for every query kind.
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        edges.extend([(2, 5), (2, 6), (2, 7)]);
        let fresh_engine = ServiceEngine::new(EngineConfig::default());
        let fresh_id =
            fresh_engine.load_graph("fresh", &UndirectedGraph::from_edges(9, edges).unwrap());
        fresh_engine.build_index(fresh_id).unwrap();
        for k in 1..=4u32 {
            assert_eq!(
                engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }),
                fresh_engine.execute(&QueryRequest::EnumerateKvccs { graph: fresh_id, k }),
                "k {k}"
            );
        }
        assert_eq!(
            engine.execute(&QueryRequest::MaxConnectivity {
                graph: id,
                u: 2,
                v: 8
            }),
            fresh_engine.execute(&QueryRequest::MaxConnectivity {
                graph: fresh_id,
                u: 2,
                v: 8
            }),
        );
        // The incrementally repaired index is byte-identical to the fresh
        // build once the epochs agree (the fresh engine never saw a batch).
        let repaired = engine.index_bytes(id).unwrap();
        let mut rebuilt =
            ConnectivityIndex::from_bytes(&fresh_engine.index_bytes(fresh_id).unwrap()).unwrap();
        rebuilt.set_epoch(1);
        assert_eq!(repaired, rebuilt.to_bytes());

        // Telemetry: one batch of four updates, and the epoch is on Stats.
        match engine.execute(&QueryRequest::GraphStats { graph: id }) {
            QueryResponse::Stats {
                epoch, scheduling, ..
            } => {
                assert_eq!(epoch, 1);
                assert_eq!(scheduling.update_batches, 1);
                assert_eq!(scheduling.update_edges, 4);
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        // Out-of-range endpoints are rejected without touching the slot.
        assert!(matches!(
            engine.apply_updates(id, &[EdgeUpdate::insert(0, 99)]),
            Err(ServiceError::VertexOutOfRange { vertex: 99 })
        ));
        assert_eq!(engine.graph_epoch(id).unwrap(), 1);
    }

    #[test]
    fn update_batches_invalidate_outstanding_page_cursors() {
        let (engine, id) = engine_with_graph();
        let first = engine.execute(&QueryRequest::TopKComponents {
            graph: id,
            rank_by: RankBy::Size,
            page_size: 1,
            cursor: None,
        });
        let cursor = match first {
            QueryResponse::Page {
                next_cursor: Some(cursor),
                ..
            } => cursor,
            other => panic!("expected a paged response with a cursor, got {other:?}"),
        };
        engine
            .apply_updates(id, &[EdgeUpdate::delete(3, 4)])
            .unwrap();
        // Resuming the old page walk would mix two forests; it is refused.
        match engine.execute(&QueryRequest::TopKComponents {
            graph: id,
            rank_by: RankBy::Size,
            page_size: 1,
            cursor: Some(cursor),
        }) {
            QueryResponse::Error(ServiceError::InvalidCursor { reason }) => {
                assert!(reason.contains("epoch"), "unexpected reason: {reason}");
            }
            other => panic!("expected InvalidCursor, got {other:?}"),
        }
        // A fresh walk at the new epoch works.
        assert!(matches!(
            engine.execute(&QueryRequest::TopKComponents {
                graph: id,
                rank_by: RankBy::Size,
                page_size: 1,
                cursor: None,
            }),
            QueryResponse::Page { .. }
        ));
    }

    #[test]
    fn updates_flow_through_the_envelope_and_preserve_reader_snapshots() {
        let (engine, id) = engine_with_graph();
        let request = Request {
            request_id: 31,
            deadline_hint_ms: None,
            body: RequestBody::ApplyUpdates {
                graph: id,
                updates: vec![EdgeUpdate::delete(2, 3), EdgeUpdate::delete(2, 4)],
            },
        };
        let response = Response::from_bytes(&engine.handle_frame(&request.to_bytes())).unwrap();
        assert_eq!(response.request_id, 31);
        assert!(matches!(
            response.body,
            ResponseBody::Query(QueryResponse::Updated { epoch: 1, .. })
        ));
        // The second triangle lost vertex 2: only one 2-VCC triangle remains.
        match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 }) {
            QueryResponse::Components(components) => {
                assert!(components
                    .iter()
                    .all(|c| c.vertices() != [2, 3, 4].as_slice()));
            }
            other => panic!("expected Components, got {other:?}"),
        }
    }
}
