//! `kvcc-shardd` — a standalone shard-worker daemon.
//!
//! Listens on a TCP address (`--listen`) or a Unix socket (`--unix`) and
//! serves `KVCC-ENUM` work items over the framed wire protocol: each
//! accepted connection gets a thread running the byte-driven shard worker
//! loop, so a coordinator process ([`kvcc_service::ServiceEngine::
//! enumerate_sharded`] over [`kvcc_service::TcpTransport`]s) can spread an
//! enumeration across real processes and machines. The daemon holds no
//! graph state — every item arrives self-contained inside a frame — which
//! is what makes it safe to kill and restart at any time: the coordinator
//! requeues whatever the dead worker was holding.
//!
//! ```text
//! kvcc-shardd --listen 0.0.0.0:7311 --threads 4 --max-connections 64
//! kvcc-shardd --unix /run/kvcc/shard.sock --token s3cret
//! ```

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;

use kvcc_service::{KvccOptions, ShardPool, SocketOptions};

/// Parsed command line.
struct Args {
    listen: Option<String>,
    unix: Option<String>,
    threads: usize,
    max_connections: usize,
    token: Option<String>,
}

fn usage() -> &'static str {
    "usage: kvcc-shardd (--listen ADDR | --unix PATH) [--threads N] [--max-connections N] [--token SECRET]\n\
     \n\
     Serves k-VCC enumeration work items over the framed wire protocol.\n\
     \n\
     options:\n\
     \x20 --listen ADDR          TCP address to accept on (e.g. 127.0.0.1:7311)\n\
     \x20 --unix PATH            Unix socket path to accept on\n\
     \x20 --threads N            worker threads per enumeration (default 1; 0 = all cores)\n\
     \x20 --max-connections N    concurrent connection cap (default 64)\n\
     \x20 --token SECRET         require a matching handshake frame on every\n\
     \x20                        connection before serving (mismatch: clean\n\
     \x20                        'unauthorized' error, connection closed)"
}

fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        unix: None,
        threads: 1,
        max_connections: 64,
        token: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--unix" => args.unix = Some(value("--unix")?),
            "--token" => args.token = Some(value("--token")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a non-negative integer".to_string())?;
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections needs a positive integer".to_string())?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    match (&args.listen, &args.unix) {
        (None, None) => Err("one of --listen or --unix is required".into()),
        (Some(_), Some(_)) => Err("--listen and --unix are mutually exclusive".into()),
        _ if args.max_connections == 0 => Err("--max-connections must be at least 1".into()),
        _ => Ok(args),
    }
}

fn main() -> ExitCode {
    let args = match parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("kvcc-shardd: {message}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let options = KvccOptions::default().with_threads(args.threads);
    let socket_options = SocketOptions::default();
    let pool = if let Some(addr) = &args.listen {
        match TcpListener::bind(addr) {
            Ok(listener) => {
                match ShardPool::serve_tcp_with_token(
                    listener,
                    socket_options,
                    options,
                    args.max_connections,
                    args.token.clone(),
                ) {
                    Ok(pool) => {
                        eprintln!(
                            "kvcc-shardd: serving on tcp://{} (max {} connections{})",
                            pool.local_addr().expect("tcp pool has an address"),
                            args.max_connections,
                            if args.token.is_some() {
                                ", token-gated"
                            } else {
                                ""
                            }
                        );
                        pool
                    }
                    Err(e) => {
                        eprintln!("kvcc-shardd: failed to start the pool: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("kvcc-shardd: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let path = args.unix.as_deref().expect("parse guarantees one mode");
        match UnixListener::bind(path) {
            Ok(listener) => {
                match ShardPool::serve_unix_with_token(
                    listener,
                    socket_options,
                    options,
                    args.max_connections,
                    args.token.clone(),
                ) {
                    Ok(pool) => {
                        eprintln!(
                            "kvcc-shardd: serving on unix:{path} (max {} connections{})",
                            args.max_connections,
                            if args.token.is_some() {
                                ", token-gated"
                            } else {
                                ""
                            }
                        );
                        pool
                    }
                    Err(e) => {
                        eprintln!("kvcc-shardd: failed to start the pool: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("kvcc-shardd: cannot bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Serve until killed; the accept thread owns the listener. Parking the
    // main thread (instead of joining) keeps shutdown-by-signal trivial.
    loop {
        std::thread::park();
        // A spurious unpark changes nothing; report liveness and park again.
        eprintln!("kvcc-shardd: {} work items served", pool.items_served());
    }
}
