//! Facade crate for the k-VCC enumeration workspace.
//!
//! The algorithmic code lives in the member crates (`kvcc`, `kvcc-graph`,
//! `kvcc-flow`, `kvcc-baselines`, `kvcc-datasets`, `kvcc-bench`); this root
//! package exists so that the cross-crate integration tests in `tests/` and
//! the runnable examples in `examples/` have a home inside the workspace.
//! It re-exports the primary entry points for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kvcc::{
    build_hierarchy, enumerate_kvccs, kvccs_containing, AlgorithmVariant, ConnectivityIndex,
    EnumerationStats, KVertexConnectedComponent, KvccEnumerator, KvccError, KvccHierarchy,
    KvccOptions, KvccResult, UpdateReport,
};
pub use kvcc_flow::{global_vertex_connectivity, is_k_vertex_connected};
pub use kvcc_graph::{
    CsrGraph, DeltaGraph, DeltaStats, EdgeUpdate, GraphView, UndirectedGraph, UpdateOp, VertexId,
};
pub use kvcc_service::{
    call, call_with, run_fleet, run_shard_worker, CallOptions, CoordinatorConfig, EngineConfig,
    FaultPlan, FaultTransport, FleetOutcome, FleetStats, GraphId, LoopbackTransport,
    OrderingPolicy, PageCursor, QueryRequest, QueryResponse, RankBy, RankedEntry, Request,
    RequestBody, Response, ResponseBody, ServiceEngine, ServiceError, ShardPool, SocketOptions,
    TcpTransport, Transport, TransportError, UnixTransport,
};
