//! The §6.4 case study as a query workload: all 4-VCCs containing a seed
//! author, answered through the [`ConnectivityIndex`] and the `kvcc-service`
//! engine.
//!
//! The paper builds a DBLP co-authorship graph, picks a prolific hub author
//! ("Jiawei Han") and shows that the 4-VCCs of his ego network separate his
//! research groups while the 4-ECC and the 4-core merge them. This example
//! reproduces that shape on the collaboration generator and demonstrates the
//! three ways of asking the same question:
//!
//! 1. the direct localized query (`kvccs_containing`, re-enumerates);
//! 2. the prebuilt [`ConnectivityIndex`] (ancestor walk, no flow code);
//! 3. a batch of [`QueryRequest`]s against a [`ServiceEngine`].
//!
//! Run with `cargo run --release --example author_query`.

use kvcc::{kvccs_containing, ConnectivityIndex, KvccOptions};
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_suite::{EngineConfig, QueryRequest, QueryResponse, ServiceEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CollaborationConfig::default();
    let collab = collaboration_graph(&config);
    let k = config.group_connectivity as u32;
    println!(
        "collaboration graph: {} authors, {} co-author edges, hub author = vertex {}",
        collab.graph.num_vertices(),
        collab.graph.num_edges(),
        collab.hub
    );

    // 1. Direct query: restricts to the hub's component, peels, enumerates.
    let direct = kvccs_containing(&collab.graph, collab.hub, k, &KvccOptions::default())?;
    println!(
        "\n{}-VCCs containing the hub (direct query): {}",
        k,
        direct.len()
    );
    for (i, comp) in direct.iter().enumerate() {
        println!("  group {}: {} authors", i + 1, comp.len());
    }

    // 2. Build the index once; every further question is an ancestor walk.
    let index = ConnectivityIndex::build(&collab.graph, None, &KvccOptions::default())?;
    let indexed = index.kvccs_containing(collab.hub, k)?;
    assert_eq!(indexed, direct, "index answers must be byte-identical");
    println!(
        "\nindex: {} components across levels 1..={}, hub connectivity number = {}",
        index.num_nodes(),
        index.max_k(),
        index.max_connectivity_of(collab.hub)
    );
    // Pairwise strength: the hub shares a k-VCC with members of every group,
    // while members of different groups are only weakly connected. Group
    // lists contain the hub itself, so take each group's last (non-hub)
    // member.
    let a = *collab.groups[0].last().unwrap();
    let b = *collab.groups[1].last().unwrap();
    println!(
        "max shared connectivity: hub–{a} = {}, {a}–{b} = {}",
        index.max_connectivity(collab.hub, a)?,
        index.max_connectivity(a, b)?
    );

    // 3. The same workload as service traffic.
    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_graph("dblp-standin", &collab.graph);
    engine.build_index(id).expect("index build");
    let requests: Vec<QueryRequest> = std::iter::once(QueryRequest::KvccsContaining {
        graph: id,
        seed: collab.hub,
        k,
    })
    .chain(
        collab
            .groups
            .iter()
            .map(|group| QueryRequest::KvccsContaining {
                graph: id,
                seed: *group.last().unwrap(),
                k,
            }),
    )
    .collect();
    let responses = engine.execute_batch(&requests);
    println!("\nservice batch ({} requests):", requests.len());
    for (request, response) in requests.iter().zip(&responses) {
        let QueryRequest::KvccsContaining { seed, .. } = request else {
            unreachable!("batch only holds containment queries");
        };
        match response {
            QueryResponse::Components(comps) => {
                println!("  seed {seed}: {} {k}-VCC(s)", comps.len())
            }
            other => println!("  seed {seed}: unexpected response {other:?}"),
        }
    }
    let QueryResponse::Components(served) = &responses[0] else {
        panic!("hub query failed");
    };
    assert_eq!(served, &direct, "service answers must match the library");
    println!("\nall three query paths agree ✓");
    Ok(())
}
