//! Mutable graphs end to end: a service engine serving queries while the
//! graph underneath it changes.
//!
//! Loads a planted-community graph into a [`ServiceEngine`], builds the
//! connectivity index, then replays a deterministic stream of batched edge
//! updates (`kvcc_datasets::diffs`). Each batch goes through
//! [`ServiceEngine::apply_updates`] — an atomic slot swap plus incremental
//! index repair — and the example queries the engine between batches to show
//! the answers tracking the evolving graph, the mutation epoch advancing,
//! and the per-batch repair telemetry (blast radius, repaired forest nodes,
//! whether the blast radius forced a full rebuild).
//!
//! Run with `cargo run --release --example live_graph`.

use kvcc_datasets::diffs::{diff_stream, DiffStreamConfig};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::{CsrGraph, UpdateOp};
use kvcc_service::{EngineConfig, QueryRequest, QueryResponse, ServiceEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Disjoint dense blocks: the level-1 forest has one root per block, so
    // updates that stay inside a block repair incrementally while uniform
    // cross-block inserts blow the blast radius up until the repair falls
    // back to a full rebuild. `locality: 0.8` mixes both regimes.
    let planted = planted_communities(&PlantedConfig {
        num_communities: 20,
        chain_length: 1,
        overlap: 0,
        community_size: (10, 14),
        background_vertices: 0,
        attachment_edges_per_community: 0,
        seed: 42,
        ..PlantedConfig::default()
    });
    let base = CsrGraph::from_view(&planted.graph);
    println!(
        "base graph: {} vertices, {} edges, {} planted communities",
        base.num_vertices(),
        base.num_edges(),
        planted.communities.len()
    );

    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_csr("live", base.clone());
    engine.build_index(id)?;

    let k = 4u32;
    let count_kvccs =
        |label: &str| match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }) {
            QueryResponse::Components(comps) => {
                println!("  {label}: {} {k}-VCCs", comps.len());
            }
            other => println!("  {label}: unexpected response {other:?}"),
        };
    println!("epoch {}", engine.graph_epoch(id)?);
    count_kvccs("before any update");

    let stream = diff_stream(
        &base,
        &DiffStreamConfig {
            batches: 6,
            batch_size: 6,
            delete_fraction: 0.4,
            locality: 0.95,
            seed: 0x11FE,
        },
    );
    for (i, batch) in stream.iter().enumerate() {
        let inserts = batch
            .iter()
            .filter(|u| matches!(u.op, UpdateOp::Insert))
            .count();
        let report = engine.apply_updates(id, batch)?;
        println!(
            "batch {i}: {} updates ({} inserts, {} deletes) -> epoch {}, blast radius {} \
             vertices, {} forest nodes repaired{}",
            batch.len(),
            inserts,
            batch.len() - inserts,
            report.epoch,
            report.affected_vertices,
            report.repaired_nodes,
            if report.rebuilt {
                " (full rebuild)"
            } else {
                ""
            }
        );
        count_kvccs("after the batch");
    }

    // The Stats surface records the whole replay: batches, edges, rebuilds.
    match engine.execute(&QueryRequest::GraphStats { graph: id }) {
        QueryResponse::Stats {
            num_edges,
            scheduling,
            epoch,
            ..
        } => {
            println!(
                "\nfinal state: {} edges at epoch {epoch}; {} update batches carried {} edge \
                 updates, {} forced a full index rebuild",
                num_edges,
                scheduling.update_batches,
                scheduling.update_edges,
                scheduling.update_rebuilds
            );
        }
        other => println!("unexpected stats response: {other:?}"),
    }
    Ok(())
}
