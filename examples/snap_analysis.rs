//! Analyse a real SNAP edge-list file (or a generated stand-in) with the
//! k-VCC enumerator.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example snap_analysis -- <path-to-edge-list> <k> [variant]
//! cargo run --release --example snap_analysis -- --suite <dataset> <k> [variant]
//! ```
//!
//! `variant` is one of `vcce`, `vcce-n`, `vcce-g`, `vcce*` (default `vcce*`).
//! With `--suite`, `<dataset>` is one of the Table-1 names (stanford, dblp,
//! cnr, nd, google, youtube, cit) and the corresponding synthetic stand-in is
//! generated instead of reading a file.

use std::time::Instant;

use kvcc::{enumerate_kvccs, AlgorithmVariant, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::io::read_snap_edge_list;
use kvcc_graph::metrics::graph_statistics;
use kvcc_graph::UndirectedGraph;

fn parse_variant(name: &str) -> Option<AlgorithmVariant> {
    match name.to_ascii_lowercase().as_str() {
        "vcce" | "basic" => Some(AlgorithmVariant::Basic),
        "vcce-n" | "neighbor" => Some(AlgorithmVariant::NeighborSweep),
        "vcce-g" | "group" => Some(AlgorithmVariant::GroupSweep),
        "vcce*" | "full" => Some(AlgorithmVariant::Full),
        _ => None,
    }
}

fn parse_suite(name: &str) -> Option<SuiteDataset> {
    match name.to_ascii_lowercase().as_str() {
        "stanford" => Some(SuiteDataset::Stanford),
        "dblp" => Some(SuiteDataset::Dblp),
        "cnr" => Some(SuiteDataset::Cnr),
        "nd" | "notredame" => Some(SuiteDataset::NotreDame),
        "google" => Some(SuiteDataset::Google),
        "youtube" => Some(SuiteDataset::Youtube),
        "cit" => Some(SuiteDataset::Cit),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!("usage: snap_analysis <edge-list-path> <k> [variant]");
    eprintln!("       snap_analysis --suite <dataset> <k> [variant]");
    std::process::exit(2);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }

    let (graph, source): (UndirectedGraph, String) = if args[0] == "--suite" {
        if args.len() < 3 {
            usage();
        }
        let dataset = parse_suite(&args[1]).unwrap_or_else(|| usage());
        (
            dataset.generate(SuiteScale::Small),
            format!("synthetic stand-in for {}", dataset.name()),
        )
    } else {
        (read_snap_edge_list(&args[0])?, args[0].clone())
    };

    let k_index = if args[0] == "--suite" { 2 } else { 1 };
    let k: u32 = args
        .get(k_index)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or_else(|| usage());
    let variant = args
        .get(k_index + 1)
        .map(|s| parse_variant(s).unwrap_or_else(|| usage()))
        .unwrap_or(AlgorithmVariant::Full);

    let stats = graph_statistics(&graph);
    println!("graph source : {source}");
    println!(
        "|V| = {}, |E| = {}, avg degree = {:.2}, max degree = {}",
        stats.num_vertices, stats.num_edges, stats.density, stats.max_degree
    );
    println!("algorithm    : {} (k = {k})", variant.paper_name());

    let started = Instant::now();
    let result = enumerate_kvccs(&graph, k, &KvccOptions::for_variant(variant))?;
    let elapsed = started.elapsed();

    println!(
        "\nfound {} {k}-VCC(s) in {:.3?}",
        result.num_components(),
        elapsed
    );
    let mut sizes: Vec<usize> = result.iter().map(|c| c.len()).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    if !sizes.is_empty() {
        println!(
            "component sizes: max = {}, median = {}, min = {}",
            sizes[0],
            sizes[sizes.len() / 2],
            sizes[sizes.len() - 1]
        );
    }
    let s = result.stats();
    println!(
        "LOC-CUT flow calls = {}, swept: NS1 = {}, NS2 = {}, GS = {}, tested = {}",
        s.loc_cut_flow_calls,
        s.pruned_neighbor_rule1,
        s.pruned_neighbor_rule2,
        s.pruned_group_sweep,
        s.tested_vertices
    );
    println!(
        "partitions = {}, k-core pruned vertices = {}, peak memory ≈ {:.1} MB",
        s.partitions,
        s.kcore_removed_vertices,
        s.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
