//! Quickstart: build a small graph, enumerate its k-VCCs and inspect the
//! result.
//!
//! Run with `cargo run --example quickstart`.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_graph::{CsrGraph, UndirectedGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two dense groups (cliques on {0..4} and {4..8}) glued at vertex 4, plus
    // a pendant vertex 9 attached to vertex 0.
    let mut edges = Vec::new();
    for block in [[0u32, 1, 2, 3, 4], [4u32, 5, 6, 7, 8]] {
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                edges.push((block[i], block[j]));
            }
        }
    }
    edges.push((0, 9));
    let graph = UndirectedGraph::from_edges(10, edges)?;

    println!(
        "input graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Enumerate the 3-vertex connected components with the default (VCCE*)
    // algorithm.
    let k = 3;
    let result = enumerate_kvccs(&graph, k, &KvccOptions::default())?;

    println!("found {} {k}-VCC(s):", result.num_components());
    for (i, component) in result.iter().enumerate() {
        println!(
            "  #{i}: {} vertices -> {:?}",
            component.len(),
            component.vertices()
        );
    }

    // Vertex 4 is the articulation point shared by both groups, so it belongs
    // to both 3-VCCs — the overlap the k-VCC model explicitly allows.
    let memberships = result.components_containing(4);
    println!("vertex 4 belongs to {} components", memberships.len());

    // The run statistics mirror the quantities reported in the paper's
    // evaluation (LOC-CUT calls, sweep effectiveness, partitions, memory).
    let stats = result.stats();
    println!(
        "stats: {} GLOBAL-CUT calls, {} flow computations, {} partitions, {:?} elapsed",
        stats.global_cut_calls, stats.loc_cut_flow_calls, stats.partitions, stats.elapsed
    );

    // Every algorithm is generic over the graph representation: the same
    // enumeration accepts the cache-friendly CSR form, and the worklist can
    // run in parallel (one worker per core) with identical output.
    let csr = CsrGraph::from_view(&graph);
    let parallel = enumerate_kvccs(&csr, k, &KvccOptions::parallel())?;
    assert_eq!(parallel.components(), result.components());
    println!(
        "CSR + parallel run agrees: {} components",
        parallel.num_components()
    );
    Ok(())
}
