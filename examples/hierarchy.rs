//! Build the full k-VCC hierarchy of a graph: how cohesive groups nest inside
//! each other as the connectivity requirement grows.
//!
//! Run with `cargo run --release --example hierarchy`.

use kvcc::{build_hierarchy, KvccOptions};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A graph with overlapping communities of different strength: chains of
    // 6-connected blocks embedded in a sparse background.
    let config = PlantedConfig {
        k: 6,
        num_communities: 6,
        community_size: (12, 18),
        overlap: 3,
        chain_length: 3,
        extra_intra_edges_per_vertex: 2,
        background_vertices: 400,
        background_edges_per_vertex: 2,
        attachment_edges_per_community: 3,
        seed: 7,
    };
    let planted = planted_communities(&config);
    println!(
        "graph: {} vertices, {} edges, {} planted 6-connected blocks",
        planted.graph.num_vertices(),
        planted.graph.num_edges(),
        planted.communities.len()
    );

    let hierarchy = build_hierarchy(&planted.graph, None, &KvccOptions::default())?;
    println!("deepest connectivity level: k = {}", hierarchy.max_k());
    println!("\nlevel  #components  largest  total members");
    for level in hierarchy.levels() {
        let largest = level.components.iter().map(|c| c.len()).max().unwrap_or(0);
        let members: usize = level.components.iter().map(|c| c.len()).sum();
        println!(
            "{:>5}  {:>11}  {:>7}  {:>13}",
            level.k,
            level.components.len(),
            largest,
            members
        );
    }

    // Vertex connectivity numbers: how deeply each vertex is embedded.
    let numbers = hierarchy.connectivity_numbers();
    let mut histogram = std::collections::BTreeMap::new();
    for n in numbers {
        *histogram.entry(n).or_insert(0usize) += 1;
    }
    println!("\nvertex connectivity-number histogram (level -> vertices):");
    for (level, count) in histogram {
        println!("  {level:>3} -> {count}");
    }
    Ok(())
}
