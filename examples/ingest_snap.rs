//! Stream a SNAP-style edge list from disk, persist the aligned `KCSR`
//! binary form, reload it zero-copy, and answer a k-VCC query — the full
//! PR 7 ingestion pipeline end to end.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example ingest_snap -- <path-to-edge-list> [k]
//! cargo run --release --example ingest_snap -- --generate [k]
//! ```
//!
//! With `--generate`, a deterministic community-ring edge list (~54k lines)
//! is streamed to a temp file first, so the example runs without any
//! dataset on disk.

use std::path::PathBuf;
use std::time::Instant;

use kvcc_datasets::StreamConfig;
use kvcc_graph::{write_kcsr_file, GraphLoader, StreamingEdgeListLoader};
use kvcc_service::{EngineConfig, LoadFormat, QueryRequest, QueryResponse, ServiceEngine};

fn usage() -> ! {
    eprintln!("usage: ingest_snap <edge-list-path> [k]");
    eprintln!("       ingest_snap --generate [k]");
    std::process::exit(2);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let k: u32 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(4);

    let edge_path: PathBuf = if args[0] == "--generate" {
        let cfg = StreamConfig {
            communities: 32,
            community_size: 256,
            skeleton_span: 3,
            extra_intra: 896,
            bridges: 32,
            seed: 0x1cde_2019,
        };
        let path = std::env::temp_dir().join(format!("ingest_snap_{}.txt", std::process::id()));
        let started = Instant::now();
        cfg.write_file(&path)?;
        println!(
            "generated {} edge lines over {} vertices into {} in {:.3?}",
            cfg.num_edge_lines(),
            cfg.num_vertices(),
            path.display(),
            started.elapsed()
        );
        path
    } else {
        PathBuf::from(&args[0])
    };

    // 1. Stream the text file into CSR: chunked parse, parallel run sort,
    //    k-way merge — the per-vertex adjacency Vecs never exist.
    let started = Instant::now();
    let ingested = StreamingEdgeListLoader::new().load_path(&edge_path)?;
    let ingest_elapsed = started.elapsed();
    println!(
        "\nstreamed ingest: |V| = {}, |E| = {} in {:.3?} ({:.0} edges/s)",
        ingested.graph.num_vertices(),
        ingested.graph.num_edges(),
        ingest_elapsed,
        ingested.graph.num_edges() as f64 / ingest_elapsed.as_secs_f64()
    );
    println!(
        "dropped {} self-loop(s), {} duplicate line(s); transient footprint ≈ {:.1} MB",
        ingested.stats.self_loops,
        ingested.stats.duplicates,
        ingested.peak_bytes as f64 / (1024.0 * 1024.0)
    );

    // 2. Persist the aligned zero-copy form next to the input.
    let kcsr_path = edge_path.with_extension("kcsr");
    write_kcsr_file(&ingested.graph, &kcsr_path)?;
    println!(
        "\nwrote {} ({} bytes, 8-byte-aligned KCSR v3)",
        kcsr_path.display(),
        std::fs::metadata(&kcsr_path)?.len()
    );

    // 3. Reload through the service engine. Under the default memory policy
    //    the slot *borrows* the validated file bytes — no decode, no copy.
    let engine = ServiceEngine::new(EngineConfig::default());
    let started = Instant::now();
    let report = engine.load_from_path("snap", &kcsr_path, LoadFormat::Kcsr)?;
    println!(
        "reloaded in {:.3?}: zero_copy = {}, |V| = {}, |E| = {}",
        started.elapsed(),
        report.zero_copy,
        report.num_vertices,
        report.num_edges
    );

    // 4. Answer a query on the borrowed graph.
    let started = Instant::now();
    match engine.execute(&QueryRequest::EnumerateKvccs {
        graph: report.graph,
        k,
    }) {
        QueryResponse::Components(components) => {
            let mut sizes: Vec<usize> = components.iter().map(|c| c.len()).collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            println!(
                "\n{} {k}-VCC(s) in {:.3?}; largest sizes: {:?}",
                components.len(),
                started.elapsed(),
                &sizes[..sizes.len().min(5)]
            );
        }
        other => println!("\nunexpected response: {other:?}"),
    }
    Ok(())
}
