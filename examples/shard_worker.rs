//! Sharded `KVCC-ENUM` over the protocol-v2 byte transport.
//!
//! The ROADMAP's sharding story: `ServiceEngine::partition_work` splits the
//! initial worklist into self-contained [`kvcc_service::CsrWorkItem`]s, and
//! everything after that is a transport problem. This example closes the
//! loop **without any shared memory**: two shard workers each sit behind an
//! in-process loopback [`Transport`] (the same length-prefixed frame format
//! a socket transport would carry), receive framed `WorkItem` requests,
//! enumerate, and answer framed `Components` responses. The coordinator
//! merges the shard outputs and verifies them byte-identical to the
//! in-process enumeration; a framed `TopKComponents` page walk against a
//! served engine rides along to show the v2 query vocabulary over the same
//! wire.
//!
//! Run with `cargo run --release --example shard_worker`.

use kvcc::KvccOptions;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_suite::{
    call, run_shard_worker, EngineConfig, LoopbackTransport, QueryRequest, QueryResponse, RankBy,
    Request, RequestBody, Response, ResponseBody, ServiceEngine,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PlantedConfig {
        num_communities: 6,
        chain_length: 2,
        community_size: (9, 12),
        background_vertices: 400,
        seed: 23,
        ..PlantedConfig::default()
    };
    let planted = planted_communities(&config);
    let k = config.k as u32;
    println!(
        "planted-partition graph: {} vertices, {} edges, enumerating {}-VCCs",
        planted.graph.num_vertices(),
        planted.graph.num_edges(),
        k
    );

    let engine = Arc::new(ServiceEngine::new(EngineConfig::default()));
    let id = engine.load_graph("planted", &planted.graph);

    // --- Sharded enumeration: work items cross loopback transports as
    // length-prefixed frames; the workers share nothing with the engine.
    let items = engine.partition_work(id, k)?;
    println!(
        "\npartition_work: {} self-contained work items ({} wire bytes total)",
        items.len(),
        items.iter().map(|i| i.to_bytes().len()).sum::<usize>()
    );
    let (client_a, server_a) = LoopbackTransport::pair();
    let (client_b, server_b) = LoopbackTransport::pair();
    let workers: Vec<_> = [("shard-a", server_a), ("shard-b", server_b)]
        .into_iter()
        .map(|(name, server)| {
            std::thread::spawn(move || {
                let served = run_shard_worker(&server, &KvccOptions::default()).unwrap();
                (name, served)
            })
        })
        .collect();
    let sharded = engine.enumerate_sharded(id, k, &[&client_a, &client_b])?;
    drop((client_a, client_b));
    for worker in workers {
        let (name, served) = worker.join().expect("worker thread");
        println!("{name}: served {served} work items over frames");
    }

    let direct = match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }) {
        QueryResponse::Components(c) => c,
        other => panic!("expected components, got {other:?}"),
    };
    assert_eq!(sharded, direct, "shard merge must equal the direct run");
    println!(
        "merged {} {}-VCCs from the shards — byte-identical to the in-process enumeration",
        sharded.len(),
        k
    );

    // --- The v2 query vocabulary over the same wire: serve the engine on a
    // loopback and walk the densest components page by page.
    let (client, server) = LoopbackTransport::pair();
    let served_engine = Arc::clone(&engine);
    let serving = std::thread::spawn(move || served_engine.serve(&server));
    println!("\ntop components by density, paged over frames (page_size = 3):");
    let mut cursor: Option<Vec<u8>> = None;
    let mut request_id = 0u64;
    let mut page_no = 0;
    loop {
        request_id += 1;
        let response: Response = call(
            &client,
            &Request {
                request_id,
                deadline_hint_ms: Some(5_000),
                body: RequestBody::Query(QueryRequest::TopKComponents {
                    graph: id,
                    rank_by: RankBy::Density,
                    page_size: 3,
                    cursor: cursor.take(),
                }),
            },
        )?;
        let (entries, next) = match response.body {
            ResponseBody::Query(QueryResponse::Page {
                entries,
                next_cursor,
            }) => (entries, next_cursor),
            other => panic!("expected a page, got {other:?}"),
        };
        page_no += 1;
        for entry in &entries {
            println!(
                "  page {page_no}: k = {}, {} members, {} internal edges, density {:.3}",
                entry.k,
                entry.size(),
                entry.internal_edges,
                entry.density()
            );
        }
        match next {
            Some(next) if page_no < 3 => cursor = Some(next),
            Some(_) => {
                println!("  … (more pages available; cursor resumes exactly here)");
                break;
            }
            None => break,
        }
    }
    drop(client);
    serving.join().expect("serving thread")?;
    println!("\nall framed answers verified against the in-process engine");
    Ok(())
}
