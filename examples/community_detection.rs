//! Case study (§6.4 of the paper): overlapping research-group detection in a
//! collaboration network.
//!
//! Builds a DBLP-style co-authorship graph around one prolific hub author,
//! extracts the hub's ego network and compares the 4-VCCs (which separate the
//! research groups and let core authors belong to several of them) against
//! the 4-ECC / 4-core (which merge everything into one blob).
//!
//! Run with `cargo run --example community_detection`.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::{k_core_components, k_edge_connected_components};
use kvcc_datasets::collaboration::{collaboration_graph, ego_subgraph, CollaborationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CollaborationConfig::default();
    let collab = collaboration_graph(&config);
    println!(
        "collaboration graph: {} authors, {} co-authorship edges, hub = author {}",
        collab.graph.num_vertices(),
        collab.graph.num_edges(),
        collab.hub
    );
    println!("planted research groups: {}", collab.groups.len());

    // The case study operates on the ego network of the hub author.
    let ego = ego_subgraph(&collab.graph, collab.hub);
    println!(
        "ego network of the hub: {} authors, {} edges",
        ego.graph.num_vertices(),
        ego.graph.num_edges()
    );

    let k = config.group_connectivity as u32;
    let vccs = enumerate_kvccs(&ego.graph, k, &KvccOptions::default())?;
    println!(
        "\n{k}-VCCs of the ego network ({} groups found):",
        vccs.num_components()
    );
    for (i, comp) in vccs.iter().enumerate() {
        // Translate local ego ids back to author ids of the full graph.
        let authors: Vec<_> = comp
            .vertices()
            .iter()
            .map(|&v| ego.to_parent[v as usize])
            .collect();
        println!("  group {i}: {} authors {:?}", authors.len(), authors);
    }

    // Authors appearing in more than one group are the "core" multi-group
    // authors of Fig. 14 (e.g. the hub itself).
    let mut multi_group = 0usize;
    for v in 0..ego.graph.num_vertices() as u32 {
        if vccs.components_containing(v).len() > 1 {
            multi_group += 1;
        }
    }
    println!("authors belonging to more than one group: {multi_group}");

    let eccs = k_edge_connected_components(&ego.graph, k as usize);
    let cores = k_core_components(&ego.graph, k as usize);
    println!(
        "\nfor comparison on the same ego network: {} {k}-ECC(s), {} {k}-core component(s)",
        eccs.len(),
        cores.len()
    );
    println!(
        "the k-VCC model reveals {} distinct groups where the weaker models report {}.",
        vccs.num_components(),
        eccs.len().max(cores.len())
    );
    Ok(())
}
