//! The free-rider effect (Fig. 1 of the paper): compare what the k-core,
//! k-ECC and k-VCC models report on four loosely glued dense blocks.
//!
//! Run with `cargo run --example free_rider`.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::{k_core_components, k_edge_connected_components};
use kvcc_datasets::figure1::figure1_graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = figure1_graph();
    let k = 4;

    println!(
        "Figure-1 graph: {} vertices, {} edges, four planted K6 blocks",
        fig.graph.num_vertices(),
        fig.graph.num_edges()
    );
    println!("ground-truth blocks:");
    for (i, block) in fig.blocks.iter().enumerate() {
        println!("  G{} = {:?}", i + 1, block);
    }

    // k-core: one giant component (maximum free-rider effect).
    let cores = k_core_components(&fig.graph, k);
    println!("\n{k}-core components ({}):", cores.len());
    for c in &cores {
        println!("  {:?}", c);
    }

    // k-ECC: separates G4 but still merges G1, G2, G3.
    let eccs = k_edge_connected_components(&fig.graph, k);
    println!("\n{k}-ECCs ({}):", eccs.len());
    for c in &eccs {
        println!("  {:?}", c);
    }

    // k-VCC: recovers all four blocks.
    let vccs = enumerate_kvccs(&fig.graph, k as u32, &KvccOptions::default())?;
    println!("\n{k}-VCCs ({}):", vccs.num_components());
    for c in vccs.iter() {
        println!("  {:?}", c.vertices());
    }

    println!(
        "\nsummary: k-core = {} component, k-ECC = {} components, k-VCC = {} components",
        cores.len(),
        eccs.len(),
        vccs.num_components()
    );
    println!("only the k-VCC model eliminates the free-rider effect entirely.");
    Ok(())
}
