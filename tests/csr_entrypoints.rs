//! Compile-time genericity check: every public entry point of `kvcc` (core)
//! and `kvcc-baselines` must accept a [`CsrGraph`] — i.e. be generic over
//! [`GraphView`] — not just the legacy `UndirectedGraph`.
//!
//! The test *instantiates* each entry point with a `CsrGraph` argument, so a
//! regression to a concrete `&UndirectedGraph` parameter fails to compile
//! rather than waiting for a runtime suite. The small runtime assertions only
//! sanity-check that the instantiations returned plausible answers.

use kvcc::global_cut::{global_cut_with_scratch, CutScratch};
use kvcc::{
    build_hierarchy, enumerate_kvccs, kvccs_containing, ConnectivityIndex, KvccEnumerator,
    KvccOptions,
};
use kvcc_graph::{CsrGraph, UndirectedGraph};

use kvcc_baselines::{
    biconnected_components, global_min_edge_cut, k_core_components, k_edge_connected_components,
    k_truss_components, naive_kvccs,
};

/// Two triangles sharing vertex 2, as CSR.
fn csr() -> CsrGraph {
    CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap()
}

#[test]
fn core_entry_points_accept_csr() {
    let g = csr();
    let options = KvccOptions::default();

    let enumerated = enumerate_kvccs(&g, 2, &options).unwrap();
    assert_eq!(enumerated.num_components(), 2);

    let via_enumerator = KvccEnumerator::new(options.clone()).run(&g, 2).unwrap();
    assert_eq!(via_enumerator.components(), enumerated.components());

    let query = kvccs_containing(&g, 2, 2, &options).unwrap();
    assert_eq!(query.len(), 2);

    let hierarchy = build_hierarchy(&g, None, &options).unwrap();
    assert_eq!(hierarchy.max_k(), 2);

    let index = ConnectivityIndex::build(&g, None, &options).unwrap();
    assert_eq!(index.components_at(2), enumerated.components());

    kvcc::verify::verify_kvccs(&g, &enumerated, true).unwrap();

    let certificate = kvcc::certificate::sparse_certificate(&g, 2);
    assert!(certificate.num_edges() <= 2 * (g.num_vertices() - 1));

    let mut stats = kvcc::stats::EnumerationStats::default();
    let mut scratch = CutScratch::new();
    let outcome = global_cut_with_scratch(&g, 2, &options, &mut stats, &mut scratch)
        .expect("an unlimited budget never interrupts");
    assert_eq!(outcome.cut, Some(vec![2]));

    let sides = kvcc::side_vertex::strong_side_vertices(&g, 2, None);
    assert_eq!(sides.len(), g.num_vertices());

    let parts = kvcc::partition::overlap_partition(&g, &[2]);
    assert_eq!(parts.len(), 2);
}

#[test]
fn baseline_entry_points_accept_csr() {
    let g = csr();

    assert_eq!(naive_kvccs(&g, 2), vec![vec![0, 1, 2], vec![2, 3, 4]]);
    assert_eq!(k_edge_connected_components(&g, 2).len(), 1);
    assert_eq!(biconnected_components(&g).len(), 2);
    assert_eq!(k_core_components(&g, 2).len(), 1);
    assert!(!k_truss_components(&g, 3).is_empty());
    let cut = global_min_edge_cut(&g, None).unwrap();
    assert!(cut.weight >= 1);
}

#[test]
fn result_components_slice_any_view() {
    // The component type itself must also slice out of any representation.
    let vec_graph =
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap();
    let g = csr();
    let result = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
    for comp in result.iter() {
        let from_csr = comp.induced_subgraph(&g);
        let from_vec = comp.induced_subgraph(&vec_graph);
        assert_eq!(from_csr.graph, from_vec.graph);
        assert_eq!(from_csr.to_parent, from_vec.to_parent);
    }
}
