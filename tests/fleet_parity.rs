//! Chaos parity: the self-healing shard coordinator must produce
//! **byte-identical** output to the in-process enumeration under every
//! seeded fault schedule.
//!
//! The suites wrap the shard transports in [`FaultTransport`] (seeded,
//! reproducible — see `kvcc_service::wire::faults`) and assert four things:
//!
//! * **parity under chaos** — drops, delays, single-bit corruption,
//!   truncation and mixed schedules across several seeds never change the
//!   merged components, only the failure-handling counters;
//! * **requeue on worker death** — a worker killed mid-item has its
//!   in-flight work requeued and the run still completes with parity;
//! * **graceful degradation** — with every worker dead (or no workers at
//!   all) the coordinator finishes locally, with parity;
//! * **health transitions** — a deterministic failure burst quarantines a
//!   worker, a later probe reinstates it, and the counters record both.
//!
//! Plus the multi-process story end to end: fleets over real TCP and Unix
//! sockets served by a [`ShardPool`], including a chaotic TCP fleet.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::time::Duration;

use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_graph::UndirectedGraph;
use kvcc_service::{
    run_shard_worker, CoordinatorConfig, EngineConfig, FaultPlan, FaultTransport, FleetOutcome,
    GraphId, KvccOptions, LoopbackTransport, OrderingPolicy, QueryRequest, QueryResponse, Response,
    ResponseBody, ServiceEngine, ShardPool, SocketOptions, TcpTransport, Transport, UnixTransport,
};

/// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
fn mixed_graph() -> UndirectedGraph {
    let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
    for i in 5..9u32 {
        for j in (i + 1)..9 {
            edges.push((i, j));
        }
    }
    UndirectedGraph::from_edges(9, edges).unwrap()
}

/// A §6.4-style workload for the socket round-trips.
fn collab() -> UndirectedGraph {
    collaboration_graph(&CollaborationConfig {
        num_groups: 6,
        group_size: (6, 9),
        pendant_collaborators: 10,
        ..CollaborationConfig::default()
    })
    .graph
}

/// Eight disjoint cliques (sizes 4–7): the k-core splits into eight
/// components, so `partition_work` is guaranteed to hand the fleet a real
/// multi-item worklist — the scheduling the chaos suites are about.
fn many_cliques() -> UndirectedGraph {
    let mut edges = Vec::new();
    let mut base = 0u32;
    for size in [4u32, 5, 6, 7, 4, 5, 6, 7] {
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
        base += size;
    }
    UndirectedGraph::from_edges(base as usize, edges).unwrap()
}

fn engine_with(name: &str, graph: &UndirectedGraph) -> (ServiceEngine, GraphId) {
    let engine = ServiceEngine::new(EngineConfig {
        ordering: OrderingPolicy::Hybrid,
        ..EngineConfig::default()
    });
    let id = engine.load_graph(name, graph);
    (engine, id)
}

/// Asserts the sharded outcome is byte-identical to the engine's own
/// answer (encoded responses compared, not just values).
fn assert_parity(engine: &ServiceEngine, id: GraphId, k: u32, outcome: &FleetOutcome, label: &str) {
    let direct = match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }) {
        QueryResponse::Components(c) => c,
        other => panic!("expected components, got {other:?}"),
    };
    let as_response = |components| Response {
        request_id: 1,
        body: ResponseBody::Query(QueryResponse::Components(components)),
    };
    assert_eq!(
        as_response(outcome.components.clone()).to_bytes(),
        as_response(direct).to_bytes(),
        "fleet output diverged from the in-process enumeration ({label})"
    );
}

/// A coordinator config tight enough to exercise timeouts within test time.
fn snappy() -> CoordinatorConfig {
    CoordinatorConfig {
        item_timeout: Duration::from_millis(60),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        probe_delay: Duration::from_millis(5),
        ..CoordinatorConfig::default()
    }
}

/// Runs a fleet of `plans.len()` chaotic loopback workers to completion and
/// returns the outcome. Worker threads are joined (their transports may end
/// in any state under chaos, so their results are deliberately ignored).
fn run_chaotic_fleet(
    engine: &ServiceEngine,
    id: GraphId,
    k: u32,
    plans: &[FaultPlan],
    config: &CoordinatorConfig,
) -> FleetOutcome {
    let mut clients = Vec::new();
    let mut workers = Vec::new();
    for plan in plans {
        let (client, server) = LoopbackTransport::pair();
        clients.push(FaultTransport::new(client, *plan));
        workers.push(std::thread::spawn(move || {
            let _ = run_shard_worker(&server, &KvccOptions::default());
        }));
    }
    let shards: Vec<&dyn Transport> = clients.iter().map(|c| c as &dyn Transport).collect();
    let outcome = engine
        .enumerate_sharded_with(id, k, &shards, config)
        .expect("chaotic fleets still complete");
    drop(shards);
    drop(clients);
    for worker in workers {
        worker.join().unwrap();
    }
    outcome
}

#[test]
fn parity_holds_under_seeded_drop_delay_corrupt_and_truncate_schedules() {
    let graph = many_cliques();
    let (engine, id) = engine_with("cliques", &graph);
    let schedules: Vec<(&str, FaultPlan)> = vec![
        (
            "drops",
            FaultPlan {
                drop_per_mille: 250,
                ..FaultPlan::default()
            },
        ),
        (
            "delays",
            FaultPlan {
                delay_per_mille: 400,
                delay: Duration::from_millis(3),
                ..FaultPlan::default()
            },
        ),
        (
            "corruption",
            FaultPlan {
                corrupt_per_mille: 250,
                ..FaultPlan::default()
            },
        ),
        (
            "truncation",
            FaultPlan {
                truncate_per_mille: 250,
                ..FaultPlan::default()
            },
        ),
        (
            "everything at once",
            FaultPlan {
                drop_per_mille: 120,
                delay_per_mille: 120,
                delay: Duration::from_millis(2),
                corrupt_per_mille: 120,
                truncate_per_mille: 120,
                ..FaultPlan::default()
            },
        ),
    ];
    for (label, plan) in schedules {
        for seed in [1u64, 7, 1234] {
            // One chaotic worker, one clean worker: the fleet as a whole
            // stays able to make remote progress under every schedule.
            let plans = [FaultPlan { seed, ..plan }, FaultPlan::default()];
            let outcome = run_chaotic_fleet(&engine, id, 2, &plans, &snappy());
            assert_parity(&engine, id, 2, &outcome, &format!("{label}, seed {seed}"));
        }
    }
}

#[test]
fn an_injected_fault_is_repaired_and_counted() {
    // Deterministic single-fault schedule: the very first request frame is
    // swallowed, so exactly one item must time out and be retried.
    let graph = mixed_graph();
    let (engine, id) = engine_with("mixed", &graph);
    let plans = [FaultPlan {
        fail_first_sends: 1,
        ..FaultPlan::default()
    }];
    let outcome = run_chaotic_fleet(&engine, id, 2, &plans, &snappy());
    assert_parity(&engine, id, 2, &outcome, "first send dropped");
    assert!(
        outcome.stats.retries >= 1 && outcome.stats.timeouts >= 1,
        "the dropped request must surface as a timeout retry: {:?}",
        outcome.stats
    );
    // The repair is visible in the slot's wire-level scheduling telemetry.
    match engine.execute(&QueryRequest::GraphStats { graph: id }) {
        QueryResponse::Stats { scheduling, .. } => {
            assert!(
                scheduling.retries >= 1,
                "stats lost the retry: {scheduling:?}"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn a_worker_killed_mid_item_has_its_work_requeued() {
    let graph = many_cliques();
    let (engine, id) = engine_with("cliques", &graph);
    // The only worker's connection dies after exactly one request frame is
    // accepted: that item is mid-flight (its response can never arrive), so
    // it — and the item whose send hit the dead socket — must be requeued
    // and finished by the coordinator's degradation path.
    let plans = [FaultPlan {
        disconnect_after_sends: Some(1),
        ..FaultPlan::default()
    }];
    let outcome = run_chaotic_fleet(&engine, id, 2, &plans, &snappy());
    assert_parity(&engine, id, 2, &outcome, "worker killed mid-item");
    assert_eq!(outcome.stats.worker_deaths, 1, "{:?}", outcome.stats);
    assert!(
        outcome.stats.requeues >= 2,
        "the in-flight item and the failed send must requeue: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.local_fallbacks >= 1,
        "with the fleet gone the requeued items finish locally: {:?}",
        outcome.stats
    );
}

#[test]
fn an_entirely_dead_fleet_degrades_to_local_execution() {
    let graph = mixed_graph();
    let (engine, id) = engine_with("mixed", &graph);
    // Both "workers" are connections to peers that hung up immediately.
    let mut clients = Vec::new();
    for _ in 0..2 {
        let (client, server) = LoopbackTransport::pair();
        drop(server);
        clients.push(client);
    }
    let shards: Vec<&dyn Transport> = clients.iter().map(|c| c as &dyn Transport).collect();
    let outcome = engine
        .enumerate_sharded_with(id, 2, &shards, &snappy())
        .expect("local fallback completes the run");
    assert_parity(&engine, id, 2, &outcome, "all workers dead");
    assert_eq!(outcome.stats.worker_deaths, 2);
    assert!(
        outcome.stats.local_fallbacks >= 1,
        "someone must have finished the items: {:?}",
        outcome.stats
    );

    // Without local fallback the same situation is an error, not a hang.
    let strict = CoordinatorConfig {
        local_fallback: false,
        ..snappy()
    };
    assert!(engine
        .enumerate_sharded_with(id, 2, &shards, &strict)
        .is_err());
}

#[test]
fn a_failure_burst_quarantines_the_worker_and_a_probe_reinstates_it() {
    let graph = many_cliques();
    let (engine, id) = engine_with("cliques", &graph);
    // The first 6 request frames vanish: enough consecutive timeouts to
    // cross the quarantine threshold and to eat the first probes; once the
    // burst is spent, a probe lands and the worker must be reinstated.
    let plans = [FaultPlan {
        fail_first_sends: 6,
        ..FaultPlan::default()
    }];
    let config = CoordinatorConfig {
        max_attempts: 10, // the burst must not exhaust items into local fallback
        ..snappy()
    };
    let outcome = run_chaotic_fleet(&engine, id, 2, &plans, &config);
    assert_parity(&engine, id, 2, &outcome, "quarantine and reinstatement");
    assert!(
        outcome.stats.quarantines >= 1,
        "six consecutive losses must quarantine: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.reinstatements >= 1,
        "a successful probe must reinstate: {:?}",
        outcome.stats
    );
}

#[test]
fn a_tcp_fleet_through_a_shard_pool_reproduces_the_enumeration() {
    let graph = collab();
    let (engine, id) = engine_with("collab", &graph);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let pool = ShardPool::serve_tcp(
        listener,
        SocketOptions::default(),
        KvccOptions::default(),
        8,
    )
    .unwrap();
    let addr = pool.local_addr().unwrap();
    for k in 1..=3u32 {
        let connections: Vec<TcpTransport> = (0..3)
            .map(|_| TcpTransport::connect(addr, SocketOptions::default()).unwrap())
            .collect();
        let shards: Vec<&dyn Transport> = connections.iter().map(|c| c as &dyn Transport).collect();
        let outcome = engine
            .enumerate_sharded_with(id, k, &shards, &CoordinatorConfig::default())
            .unwrap();
        assert_parity(&engine, id, k, &outcome, &format!("tcp fleet, k = {k}"));
        assert_eq!(
            outcome.stats.local_fallbacks, 0,
            "a healthy socket fleet needs no degradation"
        );
    }
    assert!(pool.items_served() > 0, "the pool really did the work");
}

#[test]
fn a_chaotic_tcp_fleet_still_reaches_parity() {
    let graph = many_cliques();
    let (engine, id) = engine_with("cliques", &graph);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let pool = ShardPool::serve_tcp(
        listener,
        SocketOptions::default(),
        KvccOptions::default(),
        8,
    )
    .unwrap();
    let addr = pool.local_addr().unwrap();
    let chaotic = FaultTransport::new(
        TcpTransport::connect(addr, SocketOptions::default()).unwrap(),
        FaultPlan {
            seed: 99,
            drop_per_mille: 200,
            corrupt_per_mille: 150,
            ..FaultPlan::default()
        },
    );
    let clean = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
    let outcome = engine
        .enumerate_sharded_with(id, 2, &[&chaotic, &clean], &snappy())
        .unwrap();
    assert_parity(&engine, id, 2, &outcome, "chaotic tcp fleet");
}

#[test]
fn a_unix_socket_fleet_reproduces_the_enumeration() {
    let graph = mixed_graph();
    let (engine, id) = engine_with("mixed", &graph);
    let dir = std::env::temp_dir().join(format!("kvcc-fleet-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.sock");
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap();
    let pool = ShardPool::serve_unix(
        listener,
        SocketOptions::default(),
        KvccOptions::default(),
        4,
    )
    .unwrap();
    let connections: Vec<UnixTransport> = (0..2)
        .map(|_| UnixTransport::connect(&path, SocketOptions::default()).unwrap())
        .collect();
    let shards: Vec<&dyn Transport> = connections.iter().map(|c| c as &dyn Transport).collect();
    let outcome = engine
        .enumerate_sharded_with(id, 2, &shards, &CoordinatorConfig::default())
        .unwrap();
    assert_parity(&engine, id, 2, &outcome, "unix fleet");
    drop(shards);
    drop(connections);
    drop(pool);
    let _ = std::fs::remove_file(&path);
}
