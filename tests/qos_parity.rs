//! Query-serving QoS parity: the v6 cache/coalescing/admission layer must
//! be *observationally free*.
//!
//! The contract under test is exact: a response served from the result
//! cache, from a coalesced in-flight execution, or through the admission
//! controller is **byte-identical** to a fresh uncached execution — across
//! every query kind, every [`OrderingPolicy`], the in-process path, the
//! framed-byte path ([`ServiceEngine::handle_frame`]) and a real TCP
//! socket. Epoch keying makes invalidation exact (zero stale hits after an
//! update batch), coalescing collapses identical concurrent queries onto
//! one execution (counter-asserted), failed executions propagate to every
//! waiter instead of wedging them, and overload shedding answers with the
//! retryable [`ServiceError::Overloaded`] without corrupting engine state.

use std::sync::{Arc, Barrier};

use kvcc::RankBy;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::{EdgeUpdate, UndirectedGraph};
use kvcc_service::{
    call, AdmissionConfig, EngineConfig, GraphId, OrderingPolicy, QosConfig, QueryRequest,
    QueryResponse, Request, RequestBody, Response, ResponseBody, ServiceEngine, ServiceError,
    SocketOptions, TcpTransport,
};

/// A moderate multi-community graph: enough structure that every query kind
/// has a non-trivial answer, small enough to execute the full vocabulary
/// under four ordering policies.
fn suite_graph() -> UndirectedGraph {
    planted_communities(&PlantedConfig {
        num_communities: 4,
        chain_length: 2,
        community_size: (8, 10),
        background_vertices: 120,
        seed: 0x905,
        ..PlantedConfig::default()
    })
    .graph
}

/// A graph whose `k = 3` enumeration takes long enough that threads
/// released together reliably coalesce onto the leader's execution.
fn heavy_graph() -> UndirectedGraph {
    planted_communities(&PlantedConfig {
        num_communities: 10,
        chain_length: 2,
        community_size: (18, 22),
        background_vertices: 900,
        seed: 0xC0A1,
        ..PlantedConfig::default()
    })
    .graph
}

/// A graph whose `k = 3` enumeration runs long enough (hundreds of
/// milliseconds even in release builds) that a 20 ms deadline reliably
/// interrupts the leader *after* every waiter has joined its flight. The
/// doomed execution is deadline-capped, so tests never pay the full
/// enumeration cost.
fn doomed_graph() -> UndirectedGraph {
    planted_communities(&PlantedConfig {
        num_communities: 24,
        chain_length: 2,
        community_size: (30, 36),
        background_vertices: 4000,
        seed: 0xD003,
        ..PlantedConfig::default()
    })
    .graph
}

/// An engine with the QoS layer armed for serving (cache + coalescing).
fn qos_engine(ordering: OrderingPolicy) -> ServiceEngine {
    ServiceEngine::new(EngineConfig {
        ordering,
        qos: QosConfig::serving(),
        ..EngineConfig::default()
    })
}

/// The full cacheable query vocabulary, including canonicalization twins:
/// the symmetric pairwise queries appear in both vertex orders, which must
/// share one cache entry.
fn vocabulary(id: GraphId, n: u32) -> Vec<QueryRequest> {
    vec![
        QueryRequest::EnumerateKvccs { graph: id, k: 2 },
        QueryRequest::EnumerateKvccs { graph: id, k: 3 },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: 0,
            k: 2,
        },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: n / 2,
            k: 3,
        },
        QueryRequest::MaxConnectivity {
            graph: id,
            u: 1,
            v: n - 1,
        },
        QueryRequest::MaxConnectivity {
            graph: id,
            u: n - 1,
            v: 1,
        },
        QueryRequest::VertexConnectivityNumber { graph: id, v: 2 },
        QueryRequest::GlobalCutProbe { graph: id, k: 2 },
        QueryRequest::LocalConnectivity {
            graph: id,
            u: 0,
            v: 3,
            limit: 4,
        },
        QueryRequest::LocalConnectivity {
            graph: id,
            u: 3,
            v: 0,
            limit: 4,
        },
        QueryRequest::TopKComponents {
            graph: id,
            rank_by: RankBy::Size,
            page_size: 4,
            cursor: None,
        },
    ]
}

#[test]
fn cached_responses_are_byte_identical_to_fresh_across_kinds_and_orderings() {
    let graph = suite_graph();
    let n = graph.num_vertices() as u32;
    for ordering in [
        OrderingPolicy::Preserve,
        OrderingPolicy::DegreeDescending,
        OrderingPolicy::Bfs,
        OrderingPolicy::Hybrid,
    ] {
        // Reference: the same engine configuration with QoS fully disabled.
        let reference = ServiceEngine::new(EngineConfig {
            ordering,
            ..EngineConfig::default()
        });
        let ref_id = reference.load_graph("suite", &graph);
        let serving = qos_engine(ordering);
        let id = serving.load_graph("suite", &graph);
        assert_eq!(ref_id, id, "both engines assign the first slot");

        for (i, query) in vocabulary(id, n).iter().enumerate() {
            let frame = Request::query(i as u64 + 1, query.clone()).to_bytes();
            let fresh = reference.handle_frame(&frame);
            let first = serving.handle_frame(&frame);
            assert_eq!(
                first, fresh,
                "{ordering:?}: first (executing) pass must match the uncached engine"
            );
            let second = serving.handle_frame(&frame);
            assert_eq!(
                second, fresh,
                "{ordering:?}: cache hit must serve byte-identical frames"
            );
        }

        // Counter shape: 9 distinct canonical keys execute once each; the
        // two symmetric twins hit on the first pass, all 11 on the second.
        let qos = serving.qos_stats();
        assert_eq!(
            (qos.cache_misses, qos.cache_hits, qos.coalesced, qos.shed),
            (9, 13, 0, 0),
            "{ordering:?}: canonicalized keys collapse symmetric twins"
        );
    }
}

#[test]
fn stats_queries_are_never_cached_and_report_the_qos_counters() {
    let engine = qos_engine(OrderingPolicy::Preserve);
    let id = engine.load_graph("suite", &suite_graph());
    // Warm some counters so the snapshot embedded in `Stats` is non-trivial.
    for _ in 0..2 {
        engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k: 2 });
    }
    let before = engine.qos_stats();
    assert_eq!((before.cache_misses, before.cache_hits), (1, 1));
    for _ in 0..2 {
        match engine.execute(&QueryRequest::GraphStats { graph: id }) {
            QueryResponse::Stats { qos, .. } => assert_eq!(qos, before),
            other => panic!("expected Stats, got {other:?}"),
        }
    }
    // Stats executions moved no QoS counter: never cached, never coalesced.
    assert_eq!(engine.qos_stats(), before);
}

#[test]
fn epoch_bump_invalidates_every_cached_entry_with_zero_stale_hits() {
    // Two triangles joined by a bridge; the update batch deletes the bridge
    // and fuses the triangles through two fresh edges instead.
    let before = UndirectedGraph::from_edges(
        6,
        vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
    )
    .unwrap();
    let batch = vec![
        EdgeUpdate::delete(2, 3),
        EdgeUpdate::insert(0, 3),
        EdgeUpdate::insert(1, 4),
    ];
    let after = UndirectedGraph::from_edges(
        6,
        vec![
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (0, 3),
            (1, 4),
        ],
    )
    .unwrap();

    let engine = qos_engine(OrderingPolicy::Preserve);
    let id = engine.load_graph("live", &before);
    let queries = [
        QueryRequest::EnumerateKvccs { graph: id, k: 2 },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: 4,
            k: 2,
        },
        QueryRequest::MaxConnectivity {
            graph: id,
            u: 0,
            v: 5,
        },
        QueryRequest::VertexConnectivityNumber { graph: id, v: 3 },
        QueryRequest::LocalConnectivity {
            graph: id,
            u: 0,
            v: 5,
            limit: 3,
        },
    ];
    // Populate the epoch-0 cache and prove it serves hits.
    for pass in 0..2 {
        for (i, q) in queries.iter().enumerate() {
            let frame = Request::query(i as u64 + 1, q.clone()).to_bytes();
            let _ = engine.handle_frame(&frame);
            let _ = pass;
        }
    }
    assert_eq!(engine.qos_stats().cache_hits, queries.len() as u64);

    engine.apply_updates(id, &batch).unwrap();

    // Every post-update answer must match a fresh engine that loaded the
    // updated graph from scratch — and none may come from the cache.
    let fresh_engine = ServiceEngine::new(EngineConfig::default());
    let fresh_id = fresh_engine.load_graph("fresh", &after);
    assert_eq!(fresh_id, id);
    let hits_before = engine.qos_stats().cache_hits;
    for (i, q) in queries.iter().enumerate() {
        let frame = Request::query(i as u64 + 100, q.clone()).to_bytes();
        assert_eq!(
            engine.handle_frame(&frame),
            fresh_engine.handle_frame(&frame),
            "query {i} after the update must match a from-scratch load"
        );
    }
    assert_eq!(
        engine.qos_stats().cache_hits,
        hits_before,
        "no epoch-0 entry may be served at epoch 1"
    );
    // The epoch-1 entries cache normally from here on.
    for (i, q) in queries.iter().enumerate() {
        let _ = engine.handle_frame(&Request::query(i as u64 + 200, q.clone()).to_bytes());
    }
    assert_eq!(
        engine.qos_stats().cache_hits,
        hits_before + queries.len() as u64
    );
    match engine.execute(&QueryRequest::GraphStats { graph: id }) {
        QueryResponse::Stats { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn concurrent_identical_queries_coalesce_onto_one_execution() {
    let engine = Arc::new(qos_engine(OrderingPolicy::Preserve));
    let id = engine.load_graph("heavy", &heavy_graph());
    let query = QueryRequest::EnumerateKvccs { graph: id, k: 3 };

    const CALLERS: usize = 6;
    let barrier = Barrier::new(CALLERS);
    let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let query = query.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.execute(&query)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(
        matches!(&responses[0], QueryResponse::Components(c) if !c.is_empty()),
        "the coalesced answer is a real enumeration"
    );
    // Every caller gets byte-identical frames, not merely equal values.
    let leader_bytes = Response {
        request_id: 7,
        body: ResponseBody::Query(responses[0].clone()),
    }
    .to_bytes();
    for r in &responses {
        let bytes = Response {
            request_id: 7,
            body: ResponseBody::Query(r.clone()),
        }
        .to_bytes();
        assert_eq!(bytes, leader_bytes, "waiter responses are byte-identical");
    }
    let qos = engine.qos_stats();
    assert_eq!(qos.cache_misses, 1, "exactly one execution ran");
    assert_eq!(
        qos.cache_hits + qos.coalesced,
        (CALLERS - 1) as u64,
        "every other caller was served by the leader or its cached result"
    );
}

#[test]
fn failed_executions_propagate_their_error_to_every_waiter() {
    let engine = Arc::new(qos_engine(OrderingPolicy::Preserve));
    let id = engine.load_graph("doomed", &doomed_graph());
    let query = QueryRequest::EnumerateKvccs { graph: id, k: 3 };

    // Every caller submits the same doomed envelope: the deadline hint is
    // far below the enumeration's runtime, so the leader's execution is
    // interrupted mid-flight and its error must fan out to all waiters.
    const CALLERS: usize = 5;
    let barrier = Barrier::new(CALLERS);
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let query = query.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.execute_request(&Request {
                        request_id: i as u64,
                        deadline_hint_ms: Some(20),
                        body: RequestBody::Query(query),
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for response in &responses {
        assert_eq!(
            response.body,
            ResponseBody::Query(QueryResponse::Error(ServiceError::DeadlineExceeded)),
            "the leader's failure reaches every coalesced waiter"
        );
    }
    let qos = engine.qos_stats();
    assert_eq!(qos.cache_misses, 1, "the doomed execution ran exactly once");
    assert_eq!(qos.cache_hits, 0, "errors are never served from the cache");

    // The failure was propagated, not cached: the same doomed request
    // executes again from scratch (a miss, never a hit) instead of being
    // answered from a poisoned cache entry.
    let retry = engine.execute_request(&Request {
        request_id: 99,
        deadline_hint_ms: Some(20),
        body: RequestBody::Query(query.clone()),
    });
    assert_eq!(
        retry.body,
        ResponseBody::Query(QueryResponse::Error(ServiceError::DeadlineExceeded))
    );
    let qos = engine.qos_stats();
    assert_eq!(qos.cache_misses, 2, "the retry was a fresh execution");
    assert_eq!(qos.cache_hits, 0, "the error was never cached");

    // And the engine is not wedged: an undeadlined cheap probe on the same
    // graph still serves a real answer.
    let probe = engine.execute(&QueryRequest::LocalConnectivity {
        graph: id,
        u: 0,
        v: 1,
        limit: 3,
    });
    assert!(matches!(probe, QueryResponse::Connectivity(_)));
}

#[test]
fn overload_shedding_is_retryable_and_never_corrupts_engine_state() {
    let graph = suite_graph();
    let reference = ServiceEngine::new(EngineConfig::default());
    let ref_id = reference.load_graph("suite", &graph);
    // Admission armed with an absurd prior (one second per cost unit): any
    // deadlined flow query is predicted infeasible and shed up front. Cache
    // and coalescing stay off so the shed path is observed in isolation.
    let engine = ServiceEngine::new(EngineConfig {
        qos: QosConfig {
            admission: Some(AdmissionConfig {
                initial_ns_per_cost: 1e9,
                ewma_alpha: 0.5,
                ..AdmissionConfig::default()
            }),
            ..QosConfig::default()
        },
        ..EngineConfig::default()
    });
    let id = engine.load_graph("suite", &graph);
    assert_eq!(ref_id, id);
    let query = QueryRequest::EnumerateKvccs { graph: id, k: 2 };

    // Deadlined request: shed before execution with the retryable code.
    let doomed = Request {
        request_id: 5,
        deadline_hint_ms: Some(50),
        body: RequestBody::Query(query.clone()),
    };
    let response = Response::from_bytes(&engine.handle_frame(&doomed.to_bytes())).unwrap();
    match response.body {
        ResponseBody::Query(QueryResponse::Error(e)) => {
            assert_eq!(e, ServiceError::Overloaded);
            assert!(e.is_retryable(), "shed work is safe to retry elsewhere");
        }
        other => panic!("expected an Overloaded error, got {other:?}"),
    }
    assert_eq!(engine.qos_stats().shed, 1);

    // Shedding left the engine fully intact: the undeadlined retry is
    // byte-identical to an engine that never shed anything, and the
    // observed executions retrain the EWMA away from the absurd prior
    // (halving it per observation at `ewma_alpha: 0.5`) until a realistic
    // deadline is admitted instead of shed.
    let retry = Request::query(6, query.clone()).to_bytes();
    assert_eq!(engine.handle_frame(&retry), reference.handle_frame(&retry));
    for _ in 0..10 {
        let _ = engine.handle_frame(&retry);
    }
    let generous = Request {
        request_id: 7,
        deadline_hint_ms: Some(60_000),
        body: RequestBody::Query(query),
    }
    .to_bytes();
    assert_eq!(
        engine.handle_frame(&generous),
        reference.handle_frame(
            &Request {
                request_id: 7,
                deadline_hint_ms: None,
                body: match Request::from_bytes(&generous).unwrap().body {
                    RequestBody::Query(q) => RequestBody::Query(q),
                    _ => unreachable!(),
                },
            }
            .to_bytes()
        ),
        "a trained model admits feasible deadlines"
    );
    assert_eq!(engine.qos_stats().shed, 1, "no further shedding");
}

#[test]
fn cache_hits_serve_byte_identical_frames_over_a_real_socket() {
    let engine = Arc::new(qos_engine(OrderingPolicy::Preserve));
    let graph = suite_graph();
    let id = engine.load_graph("suite", &graph);
    let reference = ServiceEngine::new(EngineConfig::default());
    reference.load_graph("suite", &graph);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_engine = Arc::clone(&engine);
    let serving = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let transport = TcpTransport::from_stream(stream, SocketOptions::default()).unwrap();
        server_engine.serve(&transport).unwrap();
    });

    let client = TcpTransport::connect(addr, SocketOptions::default()).unwrap();
    let request = Request::query(
        31,
        QueryRequest::KvccsContaining {
            graph: id,
            seed: 3,
            k: 2,
        },
    );
    let expected = Response {
        request_id: 31,
        body: ResponseBody::Query(reference.execute(&QueryRequest::KvccsContaining {
            graph: id,
            seed: 3,
            k: 2,
        })),
    };
    let first = call(&client, &request).unwrap();
    let second = call(&client, &request).unwrap();
    assert_eq!(first, expected, "socket path matches uncached in-process");
    assert_eq!(second, expected, "socket cache hit is byte-identical");
    let qos = engine.qos_stats();
    assert_eq!((qos.cache_misses, qos.cache_hits), (1, 1));
    drop(client);
    serving.join().unwrap();
}
