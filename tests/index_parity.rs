//! Hierarchy nesting invariants and `ConnectivityIndex` parity.
//!
//! Two families of cross-crate checks on the planted-partition, Fig. 1 and
//! collaboration dataset suites:
//!
//! * **nesting** — every (k+1)-VCC of the hierarchy lies inside exactly one
//!   k-VCC, the recorded parent is that component, and per-level components
//!   match a direct `enumerate_kvccs` run;
//! * **parity** — the [`ConnectivityIndex`] answers every query byte-identical
//!   to the direct (un-indexed) paths: `components_at` vs `enumerate_kvccs`,
//!   `kvccs_containing` vs the localized query, `max_connectivity_of` vs the
//!   hierarchy's connectivity numbers.

use kvcc::{
    build_hierarchy, enumerate_kvccs, kvccs_containing, ConnectivityIndex, KvccHierarchy,
    KvccOptions,
};
use kvcc_graph::{UndirectedGraph, VertexId};

use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::figure1::figure1_graph;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};

/// The three dataset suites the acceptance criteria name.
fn suites() -> Vec<(&'static str, UndirectedGraph)> {
    let planted = planted_communities(&PlantedConfig {
        num_communities: 4,
        chain_length: 2,
        community_size: (8, 10),
        background_vertices: 250,
        seed: 77,
        ..PlantedConfig::default()
    });
    let collab = collaboration_graph(&CollaborationConfig {
        num_groups: 4,
        group_size: (6, 8),
        pendant_collaborators: 8,
        ..CollaborationConfig::default()
    });
    vec![
        ("planted", planted.graph),
        ("figure1", figure1_graph().graph),
        ("collaboration", collab.graph),
    ]
}

fn assert_nesting_invariants(name: &str, g: &UndirectedGraph, hierarchy: &KvccHierarchy) {
    let options = KvccOptions::default();
    for (li, level) in hierarchy.levels().iter().enumerate() {
        assert_eq!(
            level.k as usize,
            li + 1,
            "{name}: levels must be contiguous from k = 1"
        );
        // Per-level components match a direct enumeration of the same k.
        let direct = enumerate_kvccs(g, level.k, &options).unwrap();
        assert_eq!(
            level.components.as_slice(),
            direct.components(),
            "{name}: hierarchy level {} disagrees with direct enumeration",
            level.k
        );
        if li == 0 {
            assert!(
                level.parents.iter().all(|p| p.is_none()),
                "{name}: level 1 has no parents"
            );
            continue;
        }
        let upper = &hierarchy.levels()[li - 1];
        for (comp, parent) in level.components.iter().zip(&level.parents) {
            // The recorded parent contains the child...
            let parent_idx = parent.expect("non-root level has parents");
            let parent_comp = &upper.components[parent_idx];
            for &v in comp.vertices() {
                assert!(
                    parent_comp.contains(v),
                    "{name}: child not inside its recorded parent"
                );
            }
            // ...and is the *only* container: k-VCCs overlap in < k vertices,
            // so a (k+1)-VCC (which has > k vertices) fits in at most one.
            let containers = upper
                .components
                .iter()
                .filter(|c| comp.vertices().iter().all(|&v| c.contains(v)))
                .count();
            assert_eq!(
                containers, 1,
                "{name}: every (k+1)-VCC lies inside exactly one k-VCC"
            );
        }
    }
}

#[test]
fn hierarchy_nesting_invariants_hold_on_all_suites() {
    for (name, g) in suites() {
        let hierarchy = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        assert!(
            hierarchy.max_k() >= 2,
            "{name}: suite must have a non-trivial hierarchy"
        );
        assert_nesting_invariants(name, &g, &hierarchy);
    }
}

#[test]
fn index_components_match_direct_enumeration_on_all_suites() {
    for (name, g) in suites() {
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        for k in 1..=index.max_k() + 1 {
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(
                index.components_at(k),
                direct.components(),
                "{name}: k = {k}"
            );
        }
    }
}

#[test]
fn index_seed_queries_match_the_direct_query_on_all_suites() {
    for (name, g) in suites() {
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        // Every vertex at the levels around the interesting structure; keep
        // the direct path affordable by sampling ks.
        for k in [1, 2, index.max_k().max(1)] {
            for seed in 0..g.num_vertices() as VertexId {
                let direct = kvccs_containing(&g, seed, k, &KvccOptions::default()).unwrap();
                let indexed = index.kvccs_containing(seed, k).unwrap();
                assert_eq!(indexed, direct, "{name}: seed {seed}, k {k}");
            }
        }
    }
}

#[test]
fn per_vertex_connectivity_matches_the_hierarchy_on_all_suites() {
    for (name, g) in suites() {
        let hierarchy = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        let index = ConnectivityIndex::from_hierarchy(&g, &hierarchy);
        let numbers = hierarchy.connectivity_numbers();
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(
                index.max_connectivity_of(v),
                numbers[v as usize],
                "{name}: vertex {v}"
            );
            // Self-connectivity is the vertex's own number.
            assert_eq!(
                index.max_connectivity(v, v).unwrap(),
                numbers[v as usize],
                "{name}: vertex {v}"
            );
        }
    }
}

#[test]
fn pairwise_max_connectivity_matches_brute_force_on_figure1() {
    // Brute force: for every pair, the deepest level whose enumeration has a
    // component containing both endpoints.
    let g = figure1_graph().graph;
    let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
    let options = KvccOptions::default();
    let per_level: Vec<_> = (1..=index.max_k())
        .map(|k| enumerate_kvccs(&g, k, &options).unwrap())
        .collect();
    for u in 0..g.num_vertices() as VertexId {
        for v in (u + 1)..g.num_vertices() as VertexId {
            let expected = per_level
                .iter()
                .filter(|r| r.iter().any(|c| c.contains(u) && c.contains(v)))
                .map(|r| r.k())
                .max()
                .unwrap_or(0);
            assert_eq!(
                index.max_connectivity(u, v).unwrap(),
                expected,
                "pair ({u}, {v})"
            );
        }
    }
}

#[test]
fn persisted_index_round_trips_on_every_suite() {
    // The service-restart path: serialise the index, read it back, and
    // require every query surface to answer byte-identically to the freshly
    // built index on all three acceptance suites.
    for (name, g) in suites() {
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.max_k(), index.max_k(), "{name}");
        assert_eq!(back.num_nodes(), index.num_nodes(), "{name}");
        assert_eq!(back.num_vertices(), index.num_vertices(), "{name}");
        for k in 0..=index.max_k() + 1 {
            assert_eq!(
                back.components_at(k),
                index.components_at(k),
                "{name}: level {k}"
            );
        }
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(
                back.max_connectivity_of(v),
                index.max_connectivity_of(v),
                "{name}: vertex {v}"
            );
            for k in 1..=index.max_k() {
                assert_eq!(
                    back.kvccs_containing(v, k).unwrap(),
                    index.kvccs_containing(v, k).unwrap(),
                    "{name}: seed {v}, k {k}"
                );
            }
        }
        // A pairwise sample over the LCA path.
        let n = g.num_vertices() as VertexId;
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(5) {
                assert_eq!(
                    back.max_connectivity(u, v).unwrap(),
                    index.max_connectivity(u, v).unwrap(),
                    "{name}: pair ({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn ranked_listings_cover_the_forest_with_true_metadata_on_all_suites() {
    use kvcc::{RankBy, RankedComponent};
    for (name, g) in suites() {
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let restored = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
        for rank_by in RankBy::ALL {
            let ranked = index.ranked_components(rank_by, index.num_nodes());
            // Parity with `components_at`: the ranking is a permutation of
            // the forest — every level's components appear exactly once.
            let mut from_ranking: Vec<(u32, &[VertexId])> = ranked
                .iter()
                .map(|e| (e.k, e.component.vertices()))
                .collect();
            from_ranking.sort();
            let mut from_levels: Vec<(u32, &[VertexId])> = (1..=index.max_k())
                .flat_map(|k| {
                    index
                        .components_at(k)
                        .iter()
                        .map(move |c| (k, c.vertices()))
                })
                .collect();
            from_levels.sort();
            assert_eq!(from_ranking, from_levels, "{name}/{rank_by:?}");
            // The persisted index ranks identically.
            let restored_ranked: Vec<RankedComponent<'_>> =
                restored.ranked_components(rank_by, restored.num_nodes());
            assert_eq!(ranked, restored_ranked, "{name}/{rank_by:?}");
        }
        // The precomputed edge counts are the graph's truth, on every node.
        for entry in index.ranked_components(RankBy::Size, index.num_nodes()) {
            let members = entry.component.vertices();
            let brute: u64 = members
                .iter()
                .map(|&v| {
                    g.neighbors(v)
                        .iter()
                        .filter(|w| members.binary_search(w).is_ok())
                        .count() as u64
                })
                .sum::<u64>()
                / 2;
            assert_eq!(
                entry.internal_edges, brute,
                "{name}: node {}",
                entry.node_id
            );
        }
    }
}
