//! Representation- and scheduling-parity properties over random graphs.
//!
//! The CSR refactor must be invisible to every algorithm: on deterministic
//! families of Erdős–Rényi and Barabási–Albert graphs from `kvcc-datasets`,
//! [`kvcc_graph::CsrGraph`] and [`kvcc_graph::UndirectedGraph`] have to
//! produce identical k-core, connected-component and k-VCC output for
//! k ∈ {2, 3, 4}, and the parallel `KVCC-ENUM` worklist has to return exactly
//! the sequential component sets with consistent statistics counters.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::ba::barabasi_albert;
use kvcc_datasets::er::gnm;
use kvcc_graph::kcore::{core_numbers, k_core_vertices};
use kvcc_graph::traversal::{connected_component_ids, connected_components};
use kvcc_graph::{CsrGraph, GraphView, UndirectedGraph};

/// The deterministic random-graph family the parity checks run over.
fn graph_family() -> Vec<(String, UndirectedGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..6u64 {
        let n = 30 + seed as usize * 17;
        let m = 2 * n + seed as usize * 23;
        graphs.push((format!("er-{seed}"), gnm(n, m, 0xE5 ^ seed)));
        graphs.push((format!("ba-{seed}"), barabasi_albert(n, 3, 0xBA ^ seed)));
    }
    graphs
}

#[test]
fn csr_and_vec_views_agree_on_basic_structure() {
    for (name, g) in graph_family() {
        let csr = CsrGraph::from_view(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices(), "{name}");
        assert_eq!(csr.num_edges(), g.num_edges(), "{name}");
        for v in g.vertices() {
            assert_eq!(csr.neighbors(v), g.neighbors(v), "{name}, vertex {v}");
        }
        assert_eq!(GraphView::edges(&csr).count(), g.num_edges(), "{name}");
    }
}

#[test]
fn csr_and_vec_produce_identical_kcores_and_components() {
    for (name, g) in graph_family() {
        let csr = CsrGraph::from_view(&g);
        assert_eq!(core_numbers(&g), core_numbers(&csr), "{name}: core numbers");
        assert_eq!(
            connected_components(&g),
            connected_components(&csr),
            "{name}: components"
        );
        let (ids_vec, count_vec) = connected_component_ids(&g);
        let (ids_csr, count_csr) = connected_component_ids(&csr);
        assert_eq!(
            (ids_vec, count_vec),
            (ids_csr, count_csr),
            "{name}: component ids"
        );
        for k in 2usize..=4 {
            assert_eq!(
                k_core_vertices(&g, k),
                k_core_vertices(&csr, k),
                "{name}: {k}-core"
            );
        }
    }
}

#[test]
fn csr_and_vec_produce_identical_kvccs() {
    for (name, g) in graph_family() {
        let csr = CsrGraph::from_view(&g);
        for k in 2u32..=4 {
            let a = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            let b = enumerate_kvccs(&csr, k, &KvccOptions::default()).unwrap();
            assert_eq!(a.components(), b.components(), "{name}, k {k}");
            // The internal work is identical too, not just the output.
            assert_eq!(
                a.stats().global_cut_calls,
                b.stats().global_cut_calls,
                "{name}, k {k}"
            );
            assert_eq!(a.stats().partitions, b.stats().partitions, "{name}, k {k}");
            assert_eq!(
                a.stats().loc_cut_flow_calls,
                b.stats().loc_cut_flow_calls,
                "{name}, k {k}"
            );
        }
    }
}

#[test]
fn parallel_enumeration_matches_sequential_exactly() {
    for (name, g) in graph_family() {
        for k in 2u32..=4 {
            let sequential = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            for threads in [2usize, 3, 8] {
                let opts = KvccOptions::default().with_threads(threads);
                let parallel = enumerate_kvccs(&g, k, &opts).unwrap();
                assert_eq!(
                    parallel.components(),
                    sequential.components(),
                    "{name}, k {k}, {threads} threads: component sets differ"
                );
                // Every order-independent counter must match: the same work
                // items are processed no matter how they are scheduled.
                let s = sequential.stats();
                let p = parallel.stats();
                assert_eq!(p.global_cut_calls, s.global_cut_calls, "{name}, k {k}");
                assert_eq!(p.partitions, s.partitions, "{name}, k {k}");
                assert_eq!(
                    p.kcore_removed_vertices, s.kcore_removed_vertices,
                    "{name}, k {k}"
                );
                assert_eq!(p.loc_cut_flow_calls, s.loc_cut_flow_calls, "{name}, k {k}");
                assert_eq!(
                    p.loc_cut_trivial_calls, s.loc_cut_trivial_calls,
                    "{name}, k {k}"
                );
                assert_eq!(p.tested_vertices, s.tested_vertices, "{name}, k {k}");
                assert_eq!(p.certificate_edges, s.certificate_edges, "{name}, k {k}");
                assert_eq!(p.fallback_recuts, s.fallback_recuts, "{name}, k {k}");
                if !sequential.components().is_empty() {
                    assert!(p.peak_memory_bytes > 0, "{name}, k {k}");
                }
            }
        }
    }
}
