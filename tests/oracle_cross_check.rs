//! Cross-checks of the optimised enumerator against independent oracles:
//! the brute-force subset oracle on tiny random graphs and Tarjan's
//! biconnected components for the k = 2 case.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::bicc::two_vccs;
use kvcc_baselines::naive_kvccs;
use kvcc_datasets::er::{gnm, gnp};
use kvcc_graph::{UndirectedGraph, VertexId};

fn sorted_components(result: &kvcc::KvccResult) -> Vec<Vec<VertexId>> {
    let mut comps: Vec<Vec<VertexId>> = result.iter().map(|c| c.vertices().to_vec()).collect();
    comps.sort();
    comps
}

#[test]
fn matches_the_naive_oracle_on_tiny_random_graphs() {
    // 40 deterministic random graphs with 8-12 vertices, k in {2, 3, 4}.
    for seed in 0..40u64 {
        let n = 8 + (seed % 5) as usize;
        let p = 0.25 + 0.05 * (seed % 7) as f64;
        let g = gnp(n, p, seed);
        for k in 2..=4u32 {
            let expected = naive_kvccs(&g, k);
            let result = enumerate_kvccs(&g, k, &KvccOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} k {k}: {e}"));
            assert_eq!(
                sorted_components(&result),
                expected,
                "mismatch against the brute-force oracle (seed {seed}, n {n}, k {k})"
            );
        }
    }
}

#[test]
fn matches_biconnected_components_for_k_two() {
    // Larger sparse random graphs: the 2-VCCs must be exactly the biconnected
    // components with at least three vertices.
    for seed in 0..10u64 {
        let g = gnm(120, 180 + 10 * seed as usize, seed);
        let expected = two_vccs(&g);
        let result = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(
            sorted_components(&result),
            expected,
            "2-VCCs must equal biconnected components (seed {seed})"
        );
    }
}

#[test]
fn matches_oracle_on_structured_graphs() {
    // Wheel graph: hub 0 plus cycle 1..=8. The whole wheel is 3-connected.
    let mut edges: Vec<(VertexId, VertexId)> = (1..=8).map(|i| (0, i)).collect();
    for i in 1..=8u32 {
        edges.push((i, if i == 8 { 1 } else { i + 1 }));
    }
    let wheel = UndirectedGraph::from_edges(9, edges).unwrap();
    for k in 1..=4u32 {
        let expected = naive_kvccs(&wheel, k);
        let result = enumerate_kvccs(&wheel, k, &KvccOptions::default()).unwrap();
        assert_eq!(sorted_components(&result), expected, "wheel graph, k = {k}");
    }

    // Two K5 blocks sharing 3 vertices: 4-VCCs are the blocks, 3-VCC is the
    // union (removing the 3 shared vertices disconnects, so the union is not
    // 4-connected but it is 3-connected).
    let mut edges = Vec::new();
    for block in [[0u32, 1, 2, 3, 4], [2u32, 3, 4, 5, 6]] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((block[i], block[j]));
            }
        }
    }
    let blocks = UndirectedGraph::from_edges(7, edges).unwrap();
    for k in 2..=4u32 {
        let expected = naive_kvccs(&blocks, k);
        let result = enumerate_kvccs(&blocks, k, &KvccOptions::default()).unwrap();
        assert_eq!(
            sorted_components(&result),
            expected,
            "shared-triple blocks, k = {k}"
        );
    }
}

#[test]
fn basic_variant_matches_oracle_too() {
    // The un-optimised VCCE variant must of course agree with the oracle as
    // well; this guards the shared framework rather than the sweeps.
    for seed in 100..115u64 {
        let g = gnp(10, 0.35, seed);
        for k in 2..=3u32 {
            let expected = naive_kvccs(&g, k);
            let result = enumerate_kvccs(&g, k, &KvccOptions::basic()).unwrap();
            assert_eq!(sorted_components(&result), expected, "seed {seed}, k {k}");
        }
    }
}
