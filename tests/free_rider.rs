//! The free-rider example of Fig. 1 / Example 1: the k-core and k-ECC models
//! merge loosely joined blocks while the k-VCC model separates them.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::{k_core_components, k_edge_connected_components};
use kvcc_datasets::figure1::figure1_graph;
use kvcc_graph::VertexId;

#[test]
fn four_vccs_are_exactly_the_four_blocks() {
    let fig = figure1_graph();
    let result = enumerate_kvccs(&fig.graph, 4, &KvccOptions::default()).unwrap();
    let mut found: Vec<Vec<VertexId>> = result.iter().map(|c| c.vertices().to_vec()).collect();
    found.sort();
    let mut expected: Vec<Vec<VertexId>> = fig.blocks.to_vec();
    expected.sort();
    assert_eq!(found, expected, "4-VCCs must be exactly G1..G4");
}

#[test]
fn four_core_merges_everything_into_one_component() {
    let fig = figure1_graph();
    let comps = k_core_components(&fig.graph, 4);
    assert_eq!(
        comps.len(),
        1,
        "the 4-core has a single connected component"
    );
    assert_eq!(comps[0], fig.expected_4core);
}

#[test]
fn four_eccs_merge_g1_g2_g3_but_not_g4() {
    let fig = figure1_graph();
    let comps = k_edge_connected_components(&fig.graph, 4);
    assert_eq!(comps, fig.expected_4eccs, "4-ECCs must be {{G1∪G2∪G3, G4}}");
}

#[test]
fn vcc_overlaps_match_the_paper_description() {
    let fig = figure1_graph();
    let result = enumerate_kvccs(&fig.graph, 4, &KvccOptions::default()).unwrap();
    let comps = result.components();
    assert_eq!(comps.len(), 4);
    // G1/G2 share the edge (a, b) = 2 vertices, G2/G3 share one vertex, all
    // other pairs are disjoint.
    let mut overlap_sizes: Vec<usize> = Vec::new();
    for i in 0..comps.len() {
        for j in (i + 1)..comps.len() {
            overlap_sizes.push(comps[i].overlap(&comps[j]));
        }
    }
    overlap_sizes.sort_unstable();
    assert_eq!(overlap_sizes, vec![0, 0, 0, 0, 1, 2]);
}

#[test]
fn every_variant_solves_the_figure1_example() {
    let fig = figure1_graph();
    for variant in kvcc::AlgorithmVariant::all() {
        let result = enumerate_kvccs(&fig.graph, 4, &KvccOptions::for_variant(variant)).unwrap();
        assert_eq!(result.num_components(), 4, "variant {variant:?}");
    }
    // For k = 5 the blocks are still 5-connected K6s, so they remain; for
    // k = 6 nothing survives (a K6 has only 6 vertices).
    assert_eq!(
        enumerate_kvccs(&fig.graph, 5, &KvccOptions::default())
            .unwrap()
            .num_components(),
        4
    );
    assert_eq!(
        enumerate_kvccs(&fig.graph, 6, &KvccOptions::default())
            .unwrap()
            .num_components(),
        0
    );
}
