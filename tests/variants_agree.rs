//! The four algorithm variants (VCCE, VCCE-N, VCCE-G, VCCE*) and the ablation
//! switches must all produce identical component sets — only their running
//! time and pruning statistics may differ.

use kvcc::{enumerate_kvccs, AlgorithmVariant, KvccOptions};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::{UndirectedGraph, VertexId};

fn components_of(g: &UndirectedGraph, k: u32, options: &KvccOptions) -> Vec<Vec<VertexId>> {
    let result = enumerate_kvccs(g, k, options).expect("enumeration succeeds");
    let mut comps: Vec<Vec<VertexId>> = result.iter().map(|c| c.vertices().to_vec()).collect();
    comps.sort();
    comps
}

#[test]
fn variants_agree_on_every_suite_dataset() {
    for dataset in SuiteDataset::all() {
        let g = dataset.generate(SuiteScale::Tiny);
        for &k in &[4u32, 8, 12] {
            let reference = components_of(&g, k, &KvccOptions::basic());
            for variant in AlgorithmVariant::all() {
                let got = components_of(&g, k, &KvccOptions::for_variant(variant));
                assert_eq!(
                    got,
                    reference,
                    "{} k={k}: variant {variant:?} disagrees with VCCE",
                    dataset.name()
                );
            }
        }
    }
}

#[test]
fn variants_agree_on_planted_overlapping_chains() {
    let config = PlantedConfig {
        k: 6,
        num_communities: 8,
        community_size: (12, 18),
        overlap: 4,
        chain_length: 4,
        extra_intra_edges_per_vertex: 3,
        background_vertices: 400,
        background_edges_per_vertex: 3,
        attachment_edges_per_community: 4,
        seed: 777,
    };
    let planted = planted_communities(&config);
    for k in [4u32, 6, 7] {
        let reference = components_of(&planted.graph, k, &KvccOptions::basic());
        for variant in AlgorithmVariant::all() {
            let got = components_of(&planted.graph, k, &KvccOptions::for_variant(variant));
            assert_eq!(got, reference, "k={k}, variant {variant:?}");
        }
    }
}

#[test]
fn ablation_switches_do_not_change_results() {
    let g = SuiteDataset::Cit.generate(SuiteScale::Tiny);
    let k = 9u32;
    let reference = components_of(&g, k, &KvccOptions::default());

    let no_certificate = KvccOptions {
        use_sparse_certificate: false,
        ..KvccOptions::default()
    };
    assert_eq!(
        components_of(&g, k, &no_certificate),
        reference,
        "certificate ablation"
    );

    let no_distance_order = KvccOptions {
        order_by_distance: false,
        ..KvccOptions::default()
    };
    assert_eq!(
        components_of(&g, k, &no_distance_order),
        reference,
        "ordering ablation"
    );

    let no_ssv_source = KvccOptions {
        prefer_side_vertex_source: false,
        ..KvccOptions::default()
    };
    assert_eq!(
        components_of(&g, k, &no_ssv_source),
        reference,
        "source-selection ablation"
    );

    let capped_ssv = KvccOptions {
        max_degree_for_side_vertex_check: Some(0),
        ..KvccOptions::default()
    };
    assert_eq!(
        components_of(&g, k, &capped_ssv),
        reference,
        "SSV degree-cap ablation"
    );

    let no_stats = KvccOptions {
        collect_statistics: false,
        ..KvccOptions::default()
    };
    assert_eq!(
        components_of(&g, k, &no_stats),
        reference,
        "statistics toggle"
    );
}

#[test]
fn sweeps_reduce_the_number_of_flow_computations() {
    // The whole point of VCCE*: fewer LOC-CUT flow calls than VCCE on a graph
    // with planted structure.
    let g = SuiteDataset::Google.generate(SuiteScale::Tiny);
    let k = 6u32;
    let basic = enumerate_kvccs(&g, k, &KvccOptions::basic()).unwrap();
    let full = enumerate_kvccs(&g, k, &KvccOptions::full()).unwrap();
    assert_eq!(
        basic.num_components(),
        full.num_components(),
        "variants must agree before comparing their cost"
    );
    assert!(
        full.stats().loc_cut_flow_calls < basic.stats().loc_cut_flow_calls,
        "VCCE* must issue fewer flow computations than VCCE ({} vs {})",
        full.stats().loc_cut_flow_calls,
        basic.stats().loc_cut_flow_calls
    );
    // And the sweeps must actually have fired.
    let swept = full.stats().pruned_neighbor_rule1
        + full.stats().pruned_neighbor_rule2
        + full.stats().pruned_group_sweep;
    assert!(swept > 0, "expected some vertices to be swept");
}
