//! Scheduling parity and cooperative-cancellation acceptance suite (PR 5).
//!
//! The work-stealing runtime and skew-aware work splitting are pure
//! *scheduling* changes: on the planted-partition, Fig. 1 and collaboration
//! suites, every combination of
//!
//! * scheduler ({shared-queue, work-stealing}),
//! * thread count ({2, 3, 8} — plus the sequential reference),
//! * forced split threshold ({off, 0 = split everything splittable, a
//!   moderate cost bound})
//!
//! must report the **byte-identical** component set and identical
//! deterministic statistics counters. Deadlines are the second contract:
//! pre-expired and mid-run budgets interrupt with
//! `ServiceError::DeadlineExceeded` (code 5) / `KvccError::Interrupted`,
//! never a panic or a poisoned scratch, and the engine stays fully usable
//! afterwards.

use std::time::{Duration, Instant};

use kvcc::{enumerate_kvccs, Budget, KvccError, KvccOptions, Scheduler};
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::figure1::figure1_graph;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::UndirectedGraph;
use kvcc_service::{
    EngineConfig, QueryRequest, QueryResponse, Request, RequestBody, Response, ResponseBody,
    ServiceEngine, ServiceError,
};

/// The dataset suites the acceptance criteria name.
fn suites() -> Vec<(String, UndirectedGraph, u32)> {
    let planted = planted_communities(&PlantedConfig {
        num_communities: 6,
        chain_length: 3,
        community_size: (9, 12),
        background_vertices: 300,
        seed: 91,
        ..PlantedConfig::default()
    });
    let collab = collaboration_graph(&CollaborationConfig {
        num_groups: 5,
        group_size: (6, 8),
        pendant_collaborators: 10,
        ..CollaborationConfig::default()
    });
    vec![
        ("planted".to_string(), planted.graph, 4),
        ("figure1".to_string(), figure1_graph().graph, 3),
        ("collaboration".to_string(), collab.graph, 3),
    ]
}

#[test]
fn stealing_and_splitting_match_sequential_byte_for_byte() {
    for (name, g, k_max) in suites() {
        for k in 2..=k_max {
            let sequential = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            for scheduler in [Scheduler::SharedQueue, Scheduler::WorkStealing] {
                for threshold in [None, Some(0), Some(400)] {
                    for threads in [2usize, 3, 8] {
                        let opts = KvccOptions::default()
                            .with_threads(threads)
                            .with_scheduler(scheduler)
                            .with_split_threshold(threshold);
                        let run = enumerate_kvccs(&g, k, &opts).unwrap();
                        let label = format!(
                            "{name}, k {k}, {scheduler:?}, threshold {threshold:?}, \
                             {threads} threads"
                        );
                        assert_eq!(run.components(), sequential.components(), "{label}");
                        // Deterministic counters: the processed item set is
                        // scheduling-independent (splits/work items depend
                        // only on the threshold, checked separately below).
                        let (s, p) = (sequential.stats(), run.stats());
                        assert_eq!(p.global_cut_calls, s.global_cut_calls, "{label}");
                        assert_eq!(p.partitions, s.partitions, "{label}");
                        assert_eq!(p.loc_cut_flow_calls, s.loc_cut_flow_calls, "{label}");
                        assert_eq!(p.tested_vertices, s.tested_vertices, "{label}");
                        assert_eq!(
                            p.kcore_removed_vertices, s.kcore_removed_vertices,
                            "{label}"
                        );
                        assert!(!p.cancelled, "{label}");
                    }
                }
            }
        }
    }
}

#[test]
fn split_counters_depend_only_on_the_threshold() {
    for (name, g, k_max) in suites() {
        let k = k_max;
        for threshold in [None, Some(0), Some(400)] {
            let base = enumerate_kvccs(
                &g,
                k,
                &KvccOptions::default().with_split_threshold(threshold),
            )
            .unwrap();
            for threads in [2usize, 8] {
                for scheduler in [Scheduler::SharedQueue, Scheduler::WorkStealing] {
                    let opts = KvccOptions::default()
                        .with_threads(threads)
                        .with_scheduler(scheduler)
                        .with_split_threshold(threshold);
                    let run = enumerate_kvccs(&g, k, &opts).unwrap();
                    let label =
                        format!("{name}, {scheduler:?}, threshold {threshold:?}, {threads} thr");
                    assert_eq!(run.stats().splits, base.stats().splits, "{label}");
                    assert_eq!(
                        run.stats().work_items_executed,
                        base.stats().work_items_executed,
                        "{label}"
                    );
                }
            }
        }
    }
}

/// A workload that runs far longer than the deadlines armed against it
/// (several chained overlapping communities force a deep partition
/// cascade).
fn heavy_workload() -> (UndirectedGraph, u32) {
    let planted = planted_communities(&PlantedConfig {
        num_communities: 48,
        chain_length: 48,
        community_size: (18, 22),
        background_vertices: 6_000,
        background_edges_per_vertex: 4,
        seed: 23,
        ..PlantedConfig::default()
    });
    (planted.graph, 4)
}

#[test]
fn pre_expired_and_mid_run_deadlines_return_code_5_and_leave_the_engine_reusable() {
    let (g, k) = heavy_workload();

    // Reference answer + how long the full enumeration takes unbudgeted.
    let started = Instant::now();
    let reference = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
    let full_runtime = started.elapsed();

    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_graph("skewed", &g);
    let enumerate = QueryRequest::EnumerateKvccs { graph: id, k };

    // Pre-expired deadline: interrupted before any work, code 5.
    let pre_expired = Request {
        request_id: 1,
        deadline_hint_ms: Some(0),
        body: RequestBody::Query(enumerate.clone()),
    };
    match engine.execute_request(&pre_expired).body {
        ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 5),
        other => panic!("expected code 5, got {other:?}"),
    }

    // Mid-run deadline: the workload runs ≥ 10× longer than the hint, so the
    // interrupt genuinely lands mid-enumeration; the response must still be
    // the stable deadline code, and it must come back well before a full
    // run's worth of wall clock.
    let hint_ms = 5u32;
    assert!(
        full_runtime >= Duration::from_millis(10 * hint_ms as u64),
        "workload too small to prove a mid-run interrupt ({full_runtime:?})"
    );
    let mid_run = Request {
        request_id: 2,
        deadline_hint_ms: Some(hint_ms),
        body: RequestBody::Query(enumerate.clone()),
    };
    let started = Instant::now();
    let response = engine.execute_request(&mid_run);
    let interrupted_after = started.elapsed();
    match response.body {
        ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 5),
        other => panic!("expected code 5, got {other:?}"),
    }
    assert!(
        interrupted_after < full_runtime,
        "time-to-interrupt {interrupted_after:?} must beat the full run {full_runtime:?}"
    );
    // The frame path reports the identical contract.
    let frame = engine.handle_frame(&pre_expired.to_bytes());
    match Response::from_bytes(&frame).unwrap().body {
        ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 5),
        other => panic!("expected code 5 over bytes, got {other:?}"),
    }

    // Cancelled runs are visible in the slot's scheduling telemetry.
    match engine.execute(&QueryRequest::GraphStats { graph: id }) {
        QueryResponse::Stats { scheduling, .. } => {
            assert!(scheduling.cancelled_runs >= 1, "{scheduling:?}")
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // No poisoned scratch: the same engine completes the same query
    // un-deadlined and answers exactly the library result.
    match engine.execute(&enumerate) {
        QueryResponse::Components(components) => {
            assert_eq!(components, reference.components().to_vec())
        }
        other => panic!("engine unusable after an interrupt: {other:?}"),
    }
}

#[test]
fn batch_deadlines_interrupt_between_and_inside_requests() {
    let (g, k) = heavy_workload();
    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_graph("skewed", &g);
    // One long enumeration followed by cheap queries: the first request is
    // interrupted *inside*, the rest are rejected *between* requests — all
    // with code 5, none panicking.
    let batch = Request {
        request_id: 3,
        deadline_hint_ms: Some(5),
        body: RequestBody::Batch(vec![
            QueryRequest::EnumerateKvccs { graph: id, k },
            QueryRequest::GraphStats { graph: id },
            QueryRequest::GlobalCutProbe { graph: id, k },
        ]),
    };
    match engine.execute_request(&batch).body {
        ResponseBody::Batch(responses) => {
            assert_eq!(responses.len(), 3);
            assert!(matches!(
                &responses[0],
                QueryResponse::Error(ServiceError::DeadlineExceeded)
            ));
            for r in &responses[1..] {
                // Cheap requests may sneak in before expiry on a fast box,
                // but anything that *was* rejected must use code 5.
                if let QueryResponse::Error(e) = r {
                    assert_eq!(e.code(), 5);
                }
            }
        }
        other => panic!("expected a batch, got {other:?}"),
    }
    // The engine remains usable for the whole vocabulary afterwards.
    assert!(matches!(
        engine.execute(&QueryRequest::GraphStats { graph: id }),
        QueryResponse::Stats { .. }
    ));
}

#[test]
fn library_level_cancellation_is_deterministic_and_reusable() {
    let (g, k) = heavy_workload();
    // A cancelled token (no deadline) interrupts both runtimes.
    for scheduler in [Scheduler::SharedQueue, Scheduler::WorkStealing] {
        let budget = Budget::cancellable();
        budget.cancel();
        let opts = KvccOptions::default()
            .with_threads(3)
            .with_scheduler(scheduler)
            .with_budget(budget);
        match enumerate_kvccs(&g, k, &opts) {
            Err(KvccError::Interrupted { stats }) => {
                assert!(stats.cancelled, "{scheduler:?}");
                assert_eq!(stats.work_items_executed, 0, "{scheduler:?}");
            }
            other => panic!("{scheduler:?}: expected an interrupt, got {other:?}"),
        }
    }
    // A mid-run deadline reports partial progress in the carried stats.
    let opts = KvccOptions::default()
        .with_threads(3)
        .with_budget(Budget::with_timeout(Duration::from_millis(5)));
    match enumerate_kvccs(&g, k, &opts) {
        Err(KvccError::Interrupted { stats }) => {
            assert!(stats.cancelled);
            assert!(stats.elapsed > Duration::ZERO);
        }
        other => panic!("expected a mid-run interrupt, got {other:?}"),
    }
}
