//! Mutable-graph parity: incremental index maintenance vs full rebuilds.
//!
//! The contract under test is exact: after any batch of edge updates,
//! [`ConnectivityIndex::apply_updates`] must leave the index **byte-identical**
//! (`to_bytes`) to an index built from scratch on the post-update graph —
//! across replayed seeded update streams on every acceptance suite and on
//! random-graph families, through targeted topology changes (deletes that
//! disconnect a component, inserts that merge two), through wide batches
//! that touch many hierarchy leaves at once, and through the `KIDX` v3
//! epoch round trip. A service-level replay asserts the same through the
//! engine's atomic slot swap.

use kvcc::{ConnectivityIndex, KvccOptions};
use kvcc_graph::{CsrGraph, DeltaGraph, EdgeUpdate, GraphView, UndirectedGraph};
use kvcc_service::{EngineConfig, QueryRequest, QueryResponse, ServiceEngine};

use kvcc_datasets::ba::barabasi_albert;
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::diffs::{diff_stream, DiffStreamConfig};
use kvcc_datasets::er::gnp;
use kvcc_datasets::figure1::figure1_graph;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};

/// The three acceptance suites of the repository's test battery.
fn suites() -> Vec<(&'static str, UndirectedGraph)> {
    let planted = planted_communities(&PlantedConfig {
        num_communities: 4,
        chain_length: 2,
        community_size: (8, 10),
        background_vertices: 250,
        seed: 77,
        ..PlantedConfig::default()
    });
    let collab = collaboration_graph(&CollaborationConfig {
        num_groups: 4,
        group_size: (6, 8),
        pendant_collaborators: 8,
        ..CollaborationConfig::default()
    });
    vec![
        ("planted", planted.graph),
        ("figure1", figure1_graph().graph),
        ("collaboration", collab.graph),
    ]
}

/// Replays a seeded update stream over `g`, asserting after every batch that
/// the incrementally repaired index serialises byte-identically to a fresh
/// build on the post-batch graph. Returns how many batches escalated to a
/// full rebuild (blast radius past the threshold).
fn assert_stream_parity(name: &str, g: &UndirectedGraph, config: &DiffStreamConfig) -> usize {
    let options = KvccOptions::default();
    let base = CsrGraph::from_view(g);
    let stream = diff_stream(&base, config);
    let mut live = ConnectivityIndex::build(&base, None, &options).unwrap();
    let mut rolling = DeltaGraph::new(base);
    let mut full_rebuilds = 0;
    for (i, batch) in stream.iter().enumerate() {
        rolling.apply(batch).unwrap();
        let snapshot = CsrGraph::from_view(&rolling);
        let report = live.apply_updates(&snapshot, batch, &options).unwrap();
        assert_eq!(report.epoch, (i + 1) as u64, "{name}: epoch counts batches");
        full_rebuilds += usize::from(report.rebuilt);
        let mut fresh = ConnectivityIndex::build(&snapshot, None, &options).unwrap();
        fresh.set_epoch(live.epoch());
        assert_eq!(
            live.to_bytes(),
            fresh.to_bytes(),
            "{name}: batch {i} must repair byte-identically"
        );
    }
    full_rebuilds
}

#[test]
fn incremental_repair_matches_full_rebuilds_on_all_suites() {
    for (name, g) in suites() {
        assert_stream_parity(
            name,
            &g,
            &DiffStreamConfig {
                batches: 5,
                batch_size: 8,
                delete_fraction: 0.4,
                locality: 0.0,
                seed: 0xA11CE,
            },
        );
    }
}

#[test]
fn incremental_repair_matches_full_rebuilds_on_random_families() {
    let er = gnp(140, 0.06, 11);
    let ba = barabasi_albert(160, 4, 13);
    for (name, g) in [("er", er), ("ba", ba)] {
        assert_stream_parity(
            name,
            &g,
            &DiffStreamConfig {
                batches: 4,
                batch_size: 10,
                delete_fraction: 0.45,
                locality: 0.0,
                seed: 0xBEEF,
            },
        );
    }
}

#[test]
fn localized_streams_on_disjoint_blocks_take_the_splice_path() {
    // Disjoint dense blocks with a pure triadic-closure stream: every
    // update's level-1 root is one block, so the blast radius stays far
    // under the half-graph fallback threshold and every batch exercises the
    // incremental *splice* path (the other stream tests on connected suites
    // mostly exercise the fallback).
    let g = planted_communities(&PlantedConfig {
        num_communities: 12,
        chain_length: 1,
        overlap: 0,
        community_size: (10, 14),
        background_vertices: 0,
        attachment_edges_per_community: 0,
        seed: 9,
        ..PlantedConfig::default()
    })
    .graph;
    let rebuilds = assert_stream_parity(
        "blocks",
        &g,
        &DiffStreamConfig {
            batches: 5,
            batch_size: 4,
            delete_fraction: 0.35,
            locality: 1.0,
            seed: 0x10CA1,
        },
    );
    assert_eq!(
        rebuilds, 0,
        "four per-block updates never blast past half of twelve blocks"
    );
}

#[test]
fn wide_batches_touching_many_leaves_still_match() {
    // Batches wide enough to touch most communities at once — this drives
    // the blast radius through the multi-leaf merge path and, on small
    // graphs, into the full-rebuild fallback; parity must hold either way.
    let (name, g) = suites().remove(0);
    let rebuilds = assert_stream_parity(
        name,
        &g,
        &DiffStreamConfig {
            batches: 3,
            batch_size: 64,
            delete_fraction: 0.5,
            locality: 0.0,
            seed: 0x51DE,
        },
    );
    // With ~13% of all vertices touched per batch the fallback threshold
    // (affected > n/2) may or may not trip; the point of this test is the
    // parity assertion above, so only sanity-check the counter's range.
    assert!(rebuilds <= 3);
}

#[test]
fn deletes_that_disconnect_a_component_repair_exactly() {
    // Two triangles joined by a single bridge edge: deleting the bridge
    // splits the level-1 component in two.
    let g = UndirectedGraph::from_edges(
        6,
        vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
    )
    .unwrap();
    let options = KvccOptions::default();
    let mut live = ConnectivityIndex::build(&g, None, &options).unwrap();
    assert_eq!(live.components_at(1).len(), 1);

    let batch = [EdgeUpdate::delete(2, 3)];
    let after =
        UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .unwrap();
    live.apply_updates(&after, &batch, &options).unwrap();
    let mut fresh = ConnectivityIndex::build(&after, None, &options).unwrap();
    fresh.set_epoch(1);
    assert_eq!(live.to_bytes(), fresh.to_bytes());
    assert_eq!(
        live.components_at(1).len(),
        2,
        "the bridge deletion must split the component"
    );
}

#[test]
fn inserts_that_merge_components_repair_exactly() {
    // Two disjoint triangles; three inserts fuse them into one 2-connected
    // ring of six vertices (and one connected component where there were
    // two).
    let g = UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        .unwrap();
    let options = KvccOptions::default();
    let mut live = ConnectivityIndex::build(&g, None, &options).unwrap();
    assert_eq!(live.components_at(1).len(), 2);

    let batch = [
        EdgeUpdate::insert(2, 3),
        EdgeUpdate::insert(5, 0),
        EdgeUpdate::insert(1, 4),
    ];
    let after = UndirectedGraph::from_edges(
        6,
        vec![
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3),
            (5, 0),
            (1, 4),
        ],
    )
    .unwrap();
    live.apply_updates(&after, &batch, &options).unwrap();
    let mut fresh = ConnectivityIndex::build(&after, None, &options).unwrap();
    fresh.set_epoch(1);
    assert_eq!(live.to_bytes(), fresh.to_bytes());
    assert_eq!(
        live.components_at(1).len(),
        1,
        "the inserts must merge the two components"
    );
    assert!(
        live.components_at(2)
            .iter()
            .any(|c| c.vertices().len() == 6),
        "the fused ring is 2-connected"
    );
}

#[test]
fn kidx_epoch_round_trips_through_persistence() {
    let (_, g) = suites().remove(0);
    let options = KvccOptions::default();
    let base = CsrGraph::from_view(&g);
    let stream = diff_stream(
        &base,
        &DiffStreamConfig {
            batches: 3,
            batch_size: 6,
            delete_fraction: 0.3,
            locality: 0.0,
            seed: 7,
        },
    );
    let mut live = ConnectivityIndex::build(&base, None, &options).unwrap();
    let mut rolling = DeltaGraph::new(base);
    for batch in &stream {
        rolling.apply(batch).unwrap();
        let snapshot = CsrGraph::from_view(&rolling);
        live.apply_updates(&snapshot, batch, &options).unwrap();
    }
    assert_eq!(live.epoch(), stream.len() as u64);
    // Persist → restore: the epoch (and everything else) survives the trip.
    let restored = ConnectivityIndex::from_bytes(&live.to_bytes()).unwrap();
    assert_eq!(restored.epoch(), live.epoch());
    assert_eq!(restored.to_bytes(), live.to_bytes());
}

#[test]
fn engine_replay_matches_a_fresh_engine_on_the_updated_graph() {
    // The service-level form of the same contract: replay the stream through
    // `ServiceEngine::apply_updates` (atomic slot swaps, incremental index
    // repair) and require every query answer to equal a fresh engine that
    // loaded the final graph from scratch.
    let (_, g) = suites().remove(0);
    let base = CsrGraph::from_view(&g);
    let stream = diff_stream(
        &base,
        &DiffStreamConfig {
            batches: 4,
            batch_size: 8,
            delete_fraction: 0.4,
            locality: 0.0,
            seed: 0xE2E,
        },
    );
    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_csr("live", base.clone());
    engine.build_index(id).unwrap();
    let mut rolling = DeltaGraph::new(base);
    for (i, batch) in stream.iter().enumerate() {
        let report = engine.apply_updates(id, batch).unwrap();
        assert_eq!(report.epoch, (i + 1) as u64);
        rolling.apply(batch).unwrap();
    }
    assert_eq!(engine.graph_epoch(id).unwrap(), stream.len() as u64);

    let fresh_engine = ServiceEngine::new(EngineConfig::default());
    let fresh_id = fresh_engine.load_csr("fresh", CsrGraph::from_view(&rolling));
    fresh_engine.build_index(fresh_id).unwrap();
    for k in 1..=5u32 {
        assert_eq!(
            engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }),
            fresh_engine.execute(&QueryRequest::EnumerateKvccs { graph: fresh_id, k }),
            "k {k}"
        );
    }
    for seed in (0..rolling.num_vertices() as u32).step_by(17) {
        assert_eq!(
            engine.execute(&QueryRequest::VertexConnectivityNumber { graph: id, v: seed }),
            fresh_engine.execute(&QueryRequest::VertexConnectivityNumber {
                graph: fresh_id,
                v: seed
            }),
            "vertex {seed}"
        );
    }
    // The replayed engine's index serialises identically to the fresh one
    // once the epochs agree — the strongest form of the service contract.
    let live_bytes = engine.index_bytes(id).unwrap();
    let mut fresh =
        ConnectivityIndex::from_bytes(&fresh_engine.index_bytes(fresh_id).unwrap()).unwrap();
    fresh.set_epoch(stream.len() as u64);
    assert_eq!(live_bytes, fresh.to_bytes());

    // Interrupted-update telemetry: the Stats surface reports the replay.
    match engine.execute(&QueryRequest::GraphStats { graph: id }) {
        QueryResponse::Stats {
            epoch, scheduling, ..
        } => {
            assert_eq!(epoch, stream.len() as u64);
            assert_eq!(scheduling.update_batches, stream.len() as u64);
            assert_eq!(
                scheduling.update_edges,
                stream.iter().map(|b| b.len() as u64).sum::<u64>()
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }
}
