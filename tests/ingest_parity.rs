//! Streaming-ingestion and zero-copy-format parity (PR 7).
//!
//! The chunk/sort/merge streaming loader must be byte-for-byte
//! indistinguishable from the in-memory `parse_edge_list` → `GraphBuilder`
//! path: same interning order, same dedup/self-loop diagnostics, same CSR —
//! on the paper's dataset stand-ins and on random families, across chunk
//! sizes that force real multi-run merges. The aligned `KCSR` v3 format must
//! answer identically whether the buffer is borrowed zero-copy or decoded
//! into a fresh copy, and hostile bytes (malformed edge lists, truncated or
//! bit-flipped files, random garbage) must error — never panic, never
//! produce a graph.

use std::io::Cursor;

use kvcc_datasets::ba::barabasi_albert;
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::er::gnm;
use kvcc_datasets::figure1_graph;
use kvcc_datasets::planted::planted_communities;
use kvcc_datasets::PlantedConfig;
use kvcc_graph::io::parse_edge_list_diagnostic;
use kvcc_graph::{
    borrow_kcsr, decode_kcsr, AlignedBytes, CsrGraph, StreamingEdgeListLoader, UndirectedGraph,
    VertexId,
};

/// The graphs the parity checks run over: the paper's stand-ins plus random
/// families.
fn graph_family() -> Vec<(String, UndirectedGraph)> {
    let mut graphs = vec![
        ("figure1".to_string(), figure1_graph().graph),
        (
            "planted".to_string(),
            planted_communities(&PlantedConfig {
                num_communities: 4,
                chain_length: 2,
                background_vertices: 300,
                seed: 17,
                ..PlantedConfig::default()
            })
            .graph,
        ),
        (
            "collaboration".to_string(),
            collaboration_graph(&CollaborationConfig::default()).graph,
        ),
    ];
    for seed in 0..4u64 {
        let n = 40 + seed as usize * 19;
        graphs.push((format!("er-{seed}"), gnm(n, 3 * n, 0xE5 ^ seed)));
        graphs.push((format!("ba-{seed}"), barabasi_albert(n, 3, 0xBA ^ seed)));
    }
    graphs
}

fn xorshift64(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Renders `g` as a deliberately messy SNAP-style edge list: non-contiguous
/// raw ids, shuffled line order, comment/blank lines, every 7th edge
/// repeated and a couple of self-loops. Returns the text plus the expected
/// drop counts.
fn messy_edge_list(g: &UndirectedGraph, seed: u64) -> (String, usize, usize) {
    let raw = |v: VertexId| v as u64 * 10 + 3;
    let mut lines: Vec<String> = Vec::new();
    let mut duplicates = 0usize;
    for v in 0..g.num_vertices() as VertexId {
        for &u in g.neighbors(v) {
            if v < u {
                lines.push(format!("{}\t{}", raw(v), raw(u)));
                if lines.len().is_multiple_of(7) {
                    // Repeat in the reversed orientation: still a duplicate.
                    lines.push(format!("{} {}", raw(u), raw(v)));
                    duplicates += 1;
                }
            }
        }
    }
    let self_loops = 2.min(g.num_vertices());
    for v in 0..self_loops as VertexId {
        lines.push(format!("{} {}", raw(v), raw(v)));
    }
    // Deterministic shuffle. First-appearance interning then differs from
    // vertex order, which both ingestion paths must agree on anyway.
    let mut next = xorshift64(seed);
    for i in (1..lines.len()).rev() {
        lines.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    let mut text = String::from("# messy render\n\n% percent comments too\n");
    for line in &lines {
        text.push_str(line);
        text.push('\n');
    }
    (text, duplicates, self_loops)
}

#[test]
fn streaming_and_in_memory_ingestion_are_byte_identical() {
    for (name, g) in graph_family() {
        let (text, duplicates, self_loops) = messy_edge_list(&g, 0x9e37 ^ g.num_edges() as u64);
        let (parsed, parsed_stats) = parse_edge_list_diagnostic(&text).unwrap();
        assert_eq!(parsed_stats.duplicates, duplicates, "{name}");
        assert_eq!(parsed_stats.self_loops, self_loops, "{name}");
        let reference = CsrGraph::from_view(&parsed).to_bytes_aligned();
        // Chunk sizes: forced single-pair runs, a mid size that splits the
        // input into a handful of runs, and the default (one run).
        for chunk_pairs in [2usize, 64, 1 << 20] {
            let loaded = StreamingEdgeListLoader::new()
                .with_chunk_pairs(chunk_pairs)
                .load_reader(Cursor::new(text.as_bytes()))
                .unwrap();
            assert_eq!(loaded.stats, parsed_stats, "{name}, chunk {chunk_pairs}");
            assert_eq!(
                loaded.graph.to_bytes_aligned(),
                reference,
                "{name}, chunk {chunk_pairs}: CSR bytes diverge"
            );
            assert_eq!(
                loaded.graph.num_vertices(),
                parsed.num_vertices(),
                "{name}, chunk {chunk_pairs}"
            );
        }
    }
}

#[test]
fn borrowed_and_decoded_kcsr_views_agree() {
    for (name, g) in graph_family() {
        let csr = CsrGraph::from_view(&g);
        let bytes = csr.to_bytes_aligned();
        let aligned = AlignedBytes::copy_from(&bytes);
        let borrowed = borrow_kcsr(aligned.as_bytes()).unwrap();
        let decoded = decode_kcsr(&bytes).unwrap();
        assert_eq!(borrowed.num_vertices(), csr.num_vertices(), "{name}");
        assert_eq!(decoded.num_vertices(), csr.num_vertices(), "{name}");
        assert_eq!(borrowed.num_edges(), csr.num_edges(), "{name}");
        assert_eq!(decoded.num_edges(), csr.num_edges(), "{name}");
        for v in 0..csr.num_vertices() as VertexId {
            assert_eq!(borrowed.neighbors(v), csr.neighbors(v), "{name}, {v}");
            assert_eq!(decoded.neighbors(v), csr.neighbors(v), "{name}, {v}");
        }
        // The generic dispatcher picks the aligned decoder from the version
        // byte, so the one entry point covers all wire formats.
        let via_dispatch = CsrGraph::from_bytes(&bytes).unwrap();
        assert_eq!(via_dispatch.to_bytes_aligned(), bytes, "{name}");
    }
}

#[test]
fn malformed_edge_lists_error_identically_and_never_panic() {
    let cases: &[&str] = &[
        "1",
        "1 2\n3",
        "a b",
        "1 two\n",
        "0 1\n1 x 2\n",
        "-1 2\n",
        "1.5 2\n",
        "99999999999999999999999999 1\n",
        "0 1\n\u{FEFF}2 3\n",
    ];
    for (i, text) in cases.iter().enumerate() {
        let streamed = StreamingEdgeListLoader::new()
            .with_chunk_pairs(2)
            .load_reader(Cursor::new(text.as_bytes()));
        let parsed = parse_edge_list_diagnostic(text);
        let streamed = streamed.expect_err(&format!("case {i} must fail"));
        let parsed = parsed.expect_err(&format!("case {i} must fail in memory too"));
        // Identical diagnostics: same line numbers, same message.
        assert_eq!(streamed.to_string(), parsed.to_string(), "case {i}");
    }
}

#[test]
fn corrupted_kcsr_bytes_error_and_never_panic() {
    let g = collaboration_graph(&CollaborationConfig::default()).graph;
    let bytes = CsrGraph::from_view(&g).to_bytes_aligned();

    // Truncations at every length (alignment-preserving copies, so the
    // borrow path reaches its validation logic rather than bailing on
    // alignment).
    for len in 0..bytes.len() {
        if len % 5 != 0 && len + 8 <= bytes.len() {
            continue; // sample the interior, cover the tail densely
        }
        let aligned = AlignedBytes::copy_from(&bytes[..len]);
        assert!(borrow_kcsr(aligned.as_bytes()).is_err(), "truncate {len}");
        assert!(decode_kcsr(&bytes[..len]).is_err(), "truncate {len}");
    }

    // Sampled single-bit flips across the whole file (the kvcc-graph unit
    // suite proves the exhaustive version on a smaller graph).
    for byte in (0..bytes.len()).step_by(11) {
        for bit in [0u8, 5] {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            let aligned = AlignedBytes::copy_from(&evil);
            assert!(
                borrow_kcsr(aligned.as_bytes()).is_err(),
                "bit flip at {byte}:{bit} accepted by borrow"
            );
            assert!(
                decode_kcsr(&evil).is_err(),
                "bit flip at {byte}:{bit} accepted by decode"
            );
        }
    }

    // Random garbage of assorted sizes.
    let mut next = xorshift64(0xBAD5EED);
    for len in [0usize, 7, 31, 32, 33, 256, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let aligned = AlignedBytes::copy_from(&garbage);
        assert!(borrow_kcsr(aligned.as_bytes()).is_err(), "garbage {len}");
        assert!(decode_kcsr(&garbage).is_err(), "garbage {len}");
    }
}
