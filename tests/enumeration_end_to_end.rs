//! End-to-end integration tests: planted ground truth, suite datasets,
//! structural properties guaranteed by the paper (Theorems 2 and 6,
//! Property 1, Whitney nesting).

use kvcc::{enumerate_kvccs, verify::verify_kvccs, KvccOptions};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::metrics::diameter_exact;

#[test]
fn planted_communities_are_recovered() {
    let config = PlantedConfig {
        k: 5,
        num_communities: 6,
        community_size: (10, 16),
        overlap: 3,
        chain_length: 3,
        extra_intra_edges_per_vertex: 2,
        background_vertices: 300,
        background_edges_per_vertex: 2,
        attachment_edges_per_community: 3,
        seed: 424242,
    };
    let planted = planted_communities(&config);
    let result = enumerate_kvccs(&planted.graph, config.k as u32, &KvccOptions::default())
        .expect("enumeration succeeds");
    verify_kvccs(&planted.graph, &result, true).expect("result verifies");

    // Completeness: every planted block is k-connected, so it must be fully
    // contained in one of the reported k-VCCs (Lemma 2).
    for block in &planted.communities {
        let containing = result.iter().find(|c| block.iter().all(|v| c.contains(*v)));
        assert!(
            containing.is_some(),
            "planted block {block:?} is not covered by any reported k-VCC"
        );
    }
    // The sparse background must not produce spurious high-k components: the
    // number of components stays within the same order as the planted blocks.
    assert!(result.num_components() <= planted.communities.len() + 2);
}

#[test]
fn suite_datasets_enumerate_and_verify_at_tiny_scale() {
    for dataset in SuiteDataset::all() {
        let g = dataset.generate(SuiteScale::Tiny);
        for &k in SuiteScale::Tiny.efficiency_k_values() {
            let result = enumerate_kvccs(&g, k, &KvccOptions::default())
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", dataset.name()));
            // Theorem 6: at most n/2 components.
            assert!(result.num_components() <= g.num_vertices() / 2);
            verify_kvccs(&g, &result, false)
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", dataset.name()));
        }
    }
}

#[test]
fn kvccs_nest_across_k_by_whitney_style_containment() {
    // Every (k+1)-VCC is (k+1)-connected, hence k-connected, hence contained
    // in exactly one k-VCC.
    let g = SuiteDataset::Google.generate(SuiteScale::Tiny);
    let ks = SuiteScale::Tiny.efficiency_k_values();
    let mut previous: Option<kvcc::KvccResult> = None;
    for &k in ks {
        let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
        if let Some(prev) = &previous {
            for comp in result.iter() {
                let nested_in = prev
                    .iter()
                    .filter(|outer| comp.vertices().iter().all(|&v| outer.contains(v)))
                    .count();
                assert_eq!(
                    nested_in,
                    1,
                    "a {k}-VCC must be nested in exactly one {}-VCC",
                    prev.k()
                );
            }
        }
        previous = Some(result);
    }
}

#[test]
fn diameter_bound_of_theorem_2_holds() {
    let g = SuiteDataset::Dblp.generate(SuiteScale::Tiny);
    let k = 6u32;
    let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
    assert!(
        result.num_components() > 0,
        "expected some 6-VCCs in the DBLP stand-in"
    );
    for comp in result.iter() {
        let sub = comp.induced_subgraph(&g);
        let diam = diameter_exact(&sub.graph) as usize;
        // κ(G_i) >= k, so the Theorem 2 bound with κ replaced by k is weaker
        // and must hold as well.
        let bound = (comp.len() - 2) / k as usize + 1;
        assert!(
            diam <= bound,
            "component of size {} has diameter {diam} > bound {bound}",
            comp.len()
        );
    }
}

#[test]
fn overlap_between_components_is_below_k() {
    let g = SuiteDataset::Cnr.generate(SuiteScale::Tiny);
    for &k in &[6u32, 9] {
        let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
        let comps = result.components();
        for i in 0..comps.len() {
            for j in (i + 1)..comps.len() {
                assert!(
                    comps[i].overlap(&comps[j]) < k as usize,
                    "Property 1 violated between components {i} and {j} at k={k}"
                );
            }
        }
    }
}

#[test]
fn statistics_are_populated() {
    let g = SuiteDataset::Stanford.generate(SuiteScale::Tiny);
    // Pick k strictly above the minimum degree so the first k-core pass is
    // guaranteed to peel the sparse background regardless of the exact RNG
    // stream behind the generator.
    let k = (kvcc_graph::GraphView::min_degree(&g) + 1).max(6) as u32;
    let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
    let stats = result.stats();
    assert!(stats.global_cut_calls > 0);
    assert!(stats.loc_cut_flow_calls + stats.loc_cut_trivial_calls > 0);
    assert!(
        stats.kcore_removed_vertices > 0,
        "the sparse background should be peeled"
    );
    assert!(stats.peak_memory_bytes > 0);
    assert!(stats.elapsed.as_nanos() > 0);
    assert!(stats.certificate_edges > 0);
    // The pruning accounting never exceeds the number of phase-1 encounters.
    assert!(stats.phase1_vertices() >= stats.tested_vertices);
}
