//! Substrate parity for the locality-optimized layouts.
//!
//! The reordered and compressed CSR substrates must be invisible to the
//! enumeration: on the planted-partition, Fig. 1 and collaboration suites
//! (plus deterministic random families), enumerating on
//!
//! * the hybrid/BFS/degree-reordered [`CsrGraph`] (output mapped back
//!   through the [`VertexOrdering`]), and
//! * the delta+varint [`CompressedCsrGraph`]
//!
//! must be **byte-identical** to the baseline CSR enumeration, under both
//! the k-bounded and the exact flow probe. Randomized fuzzes of the varint
//! delta codec (scalar vs batched decoder, including adversarial and
//! truncated inputs) and of the shared [`kvcc_graph::BitSet`] (against a
//! `Vec<bool>` model) ride along.

use kvcc::{enumerate_kvccs, KVertexConnectedComponent, KvccOptions};
use kvcc_datasets::ba::barabasi_albert;
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::er::gnm;
use kvcc_datasets::figure1::figure1_graph;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::codec::{decode_row_into, decode_row_scalar_into};
use kvcc_graph::compressed::{decode_row, encode_row, varint};
use kvcc_graph::reorder::{compute_ordering, OrderingStrategy};
use kvcc_graph::{BitSet, CompressedCsrGraph, CsrGraph, GraphView, UndirectedGraph, VertexId};

/// The dataset suites the acceptance criteria name, plus random families.
fn suites() -> Vec<(String, UndirectedGraph)> {
    let planted = planted_communities(&PlantedConfig {
        num_communities: 4,
        chain_length: 2,
        community_size: (8, 10),
        background_vertices: 250,
        seed: 77,
        ..PlantedConfig::default()
    });
    let collab = collaboration_graph(&CollaborationConfig {
        num_groups: 4,
        group_size: (6, 8),
        pendant_collaborators: 8,
        ..CollaborationConfig::default()
    });
    let mut graphs = vec![
        ("planted".to_string(), planted.graph),
        ("figure1".to_string(), figure1_graph().graph),
        ("collaboration".to_string(), collab.graph),
    ];
    for seed in 0..3u64 {
        let n = 40 + seed as usize * 21;
        graphs.push((format!("er-{seed}"), gnm(n, 3 * n, 0x3E ^ seed)));
        graphs.push((format!("ba-{seed}"), barabasi_albert(n, 3, 0x5B ^ seed)));
    }
    graphs
}

const STRATEGIES: [OrderingStrategy; 3] = [
    OrderingStrategy::DegreeDescending,
    OrderingStrategy::Bfs,
    OrderingStrategy::Hybrid,
];

#[test]
fn reordered_enumeration_is_byte_identical_to_baseline() {
    for (name, g) in suites() {
        let csr = CsrGraph::from_view(&g);
        for k in 2u32..=4 {
            let baseline = enumerate_kvccs(&csr, k, &KvccOptions::default()).unwrap();
            for strategy in STRATEGIES {
                let ordering = compute_ordering(&csr, strategy);
                let reordered = csr.reordered(&ordering);
                let result = enumerate_kvccs(&reordered, k, &KvccOptions::default()).unwrap();
                let mut mapped: Vec<KVertexConnectedComponent> = result
                    .components()
                    .iter()
                    .map(|c| {
                        KVertexConnectedComponent::new(
                            c.vertices().iter().map(|&v| ordering.to_old(v)).collect(),
                        )
                    })
                    .collect();
                mapped.sort();
                assert_eq!(
                    mapped.as_slice(),
                    baseline.components(),
                    "{name}, k {k}, {strategy:?}"
                );
            }
        }
    }
}

#[test]
fn compressed_enumeration_is_byte_identical_to_baseline() {
    for (name, g) in suites() {
        let csr = CsrGraph::from_view(&g);
        let compressed = CompressedCsrGraph::from_csr(&csr);
        assert_eq!(compressed.to_csr(), csr, "{name}: codec round-trip");
        for k in 2u32..=4 {
            let baseline = enumerate_kvccs(&csr, k, &KvccOptions::default()).unwrap();
            let result = enumerate_kvccs(&compressed, k, &KvccOptions::default()).unwrap();
            assert_eq!(
                result.components(),
                baseline.components(),
                "{name}, k {k}: compressed substrate diverged"
            );
        }
    }
}

#[test]
fn exact_flow_probe_matches_the_k_bounded_default() {
    for (name, g) in suites() {
        let csr = CsrGraph::from_view(&g);
        let exact = KvccOptions::default().with_k_bounded_flow(false);
        for k in 2u32..=4 {
            let bounded = enumerate_kvccs(&csr, k, &KvccOptions::default()).unwrap();
            let unbounded = enumerate_kvccs(&csr, k, &exact).unwrap();
            assert_eq!(
                bounded.components(),
                unbounded.components(),
                "{name}, k {k}: probe bound changed the output"
            );
            // The bound only short-circuits flow augmentation; the probe
            // schedule (which pairs reach a flow computation) is identical.
            assert_eq!(
                bounded.stats().loc_cut_flow_calls,
                unbounded.stats().loc_cut_flow_calls,
                "{name}, k {k}"
            );
        }
    }
}

/// Tiny deterministic xorshift64* generator — keeps the fuzz loops free of
/// any dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn randomized_varint_delta_codec_roundtrip() {
    let mut rng = XorShift(0xC0FFEE);
    let mut buf = Vec::new();
    for round in 0..500 {
        // Random strictly-increasing rows with a mix of tiny and huge gaps.
        let len = rng.below(40) as usize;
        let mut row: Vec<VertexId> = Vec::with_capacity(len);
        let mut current: u64 = rng.below(1 << 20);
        for _ in 0..len {
            let gap = match rng.below(4) {
                0 => 1,
                1 => 1 + rng.below(10),
                2 => 1 + rng.below(1 << 14),
                _ => 1 + rng.below(1 << 27),
            };
            current += gap;
            if current > u32::MAX as u64 {
                break;
            }
            row.push(current as VertexId);
        }
        buf.clear();
        encode_row(&row, &mut buf);
        let (decoded, end) = decode_row(&buf, 0, row.len()).expect("valid stream");
        assert_eq!(decoded, row, "round {round}");
        assert_eq!(end, buf.len(), "round {round}: trailing bytes");
        // Asking for one more value than encoded must fail, not panic.
        assert!(decode_row(&buf, 0, row.len() + 1).is_none());
        // Truncating the stream anywhere must fail cleanly, not panic: the
        // encoding of `len` values needs every one of its bytes.
        if !buf.is_empty() {
            let cut = rng.below(buf.len() as u64) as usize;
            assert!(decode_row(&buf[..cut], 0, row.len()).is_none(), "cut {cut}");
        }
    }
    // Raw varint values across the whole range.
    for round in 0..2_000 {
        let value = (rng.next() >> rng.below(33)) as u32;
        buf.clear();
        varint::encode_u32(value, &mut buf);
        assert_eq!(
            varint::decode_u32(&buf, 0),
            Some((value, buf.len())),
            "round {round}"
        );
    }
}

/// Differential fuzz of the batched four-gaps-per-window row decoder against
/// the scalar reference: random valid rows, adversarial gap sizes straddling
/// every varint length, random garbage, and truncations at every boundary.
/// Both decoders must accept/reject identically, and truncation must error —
/// never panic. On failure the partially-appended buffer contents are
/// unspecified, so contents are only compared on success.
#[test]
fn batched_decoder_matches_scalar_reference_under_fuzz() {
    let mut rng = XorShift(0xBA7C4);
    let mut buf = Vec::new();
    let mut scalar = Vec::new();
    let mut batched = Vec::new();
    for round in 0..600 {
        // Rows whose gap sizes hop across every varint byte-length, so the
        // batched window check and the scalar tail both get exercised.
        let len = rng.below(48) as usize;
        let mut row: Vec<VertexId> = Vec::with_capacity(len);
        let mut current: u64 = rng.below(1 << 16);
        for _ in 0..len {
            let gap = match rng.below(6) {
                0 => 1,
                1 => 1 + rng.below(1 << 7),
                2 => 1 + rng.below(1 << 14),
                3 => 1 + rng.below(1 << 21),
                4 => 1 + rng.below(1 << 28),
                _ => 1 + rng.below(u32::MAX as u64 / 2),
            };
            current += gap;
            if current > u32::MAX as u64 {
                break;
            }
            row.push(current as VertexId);
        }
        buf.clear();
        encode_row(&row, &mut buf);
        let s = decode_row_scalar_into(&buf, 0, row.len(), &mut scalar);
        let b = decode_row_into(&buf, 0, row.len(), &mut batched);
        assert_eq!(s, b, "round {round}: end positions diverged");
        assert_eq!(s, Some(buf.len()), "round {round}");
        assert_eq!(scalar, row, "round {round}: scalar decode");
        assert_eq!(batched, row, "round {round}: batched decode");
        // Every truncation must fail in both decoders (each encoded value
        // needs all of its bytes), without panicking.
        for cut in 0..buf.len() {
            assert!(
                decode_row_scalar_into(&buf[..cut], 0, row.len(), &mut scalar).is_none(),
                "round {round} cut {cut}: scalar accepted a truncation"
            );
            assert!(
                decode_row_into(&buf[..cut], 0, row.len(), &mut batched).is_none(),
                "round {round} cut {cut}: batched accepted a truncation"
            );
        }
        // Over-count requests fail identically too.
        assert_eq!(
            decode_row_scalar_into(&buf, 0, row.len() + 1, &mut scalar).is_none(),
            decode_row_into(&buf, 0, row.len() + 1, &mut batched).is_none(),
            "round {round}: over-count divergence"
        );
    }
    // Pure garbage bytes: whatever the scalar decoder says, the batched one
    // must agree (accept with the same end position or reject).
    for round in 0..400 {
        let len = rng.below(40) as usize;
        buf.clear();
        for _ in 0..len {
            buf.push(rng.next() as u8);
        }
        let count = rng.below(12) as usize;
        let s = decode_row_scalar_into(&buf, 0, count, &mut scalar);
        let b = decode_row_into(&buf, 0, count, &mut batched);
        assert_eq!(s, b, "garbage round {round}");
        if s.is_some() {
            assert_eq!(scalar, batched, "garbage round {round}: decoded values");
        }
    }
}

/// Property test of the shared [`BitSet`] against a `Vec<bool>` model:
/// random insert/remove/range/clear sequences must keep membership, count
/// and ascending `iter_ones` identical to the model.
#[test]
fn bitset_matches_vec_bool_model_under_fuzz() {
    let mut rng = XorShift(0xB17_5E7);
    for len in [0usize, 1, 63, 64, 65, 127, 130, 1000] {
        let mut set = BitSet::new(len);
        let mut model = vec![false; len];
        for _ in 0..600 {
            match rng.below(6) {
                0 | 1 => {
                    if len > 0 {
                        let i = rng.below(len as u64) as usize;
                        let fresh = set.insert(i);
                        assert_eq!(fresh, !model[i], "insert({i}) return value");
                        model[i] = true;
                    }
                }
                2 => {
                    if len > 0 {
                        let i = rng.below(len as u64) as usize;
                        let was = set.remove(i);
                        assert_eq!(was, model[i], "remove({i}) return value");
                        model[i] = false;
                    }
                }
                3 => {
                    let a = rng.below(len as u64 + 1) as usize;
                    let b = rng.below(len as u64 + 1) as usize;
                    let (lo, hi) = (a.min(b), a.max(b));
                    if rng.below(2) == 0 {
                        set.set_range(lo, hi);
                        model[lo..hi].fill(true);
                    } else {
                        set.clear_range(lo, hi);
                        model[lo..hi].fill(false);
                    }
                }
                4 => {
                    set.clear_all();
                    model.fill(false);
                }
                _ => {
                    // Membership spot-checks between mutations.
                    if len > 0 {
                        let i = rng.below(len as u64) as usize;
                        assert_eq!(set.contains(i), model[i], "contains({i})");
                    }
                }
            }
            assert_eq!(
                set.count_ones(),
                model.iter().filter(|&&b| b).count(),
                "count_ones diverged at len {len}"
            );
        }
        let ones: Vec<usize> = set.iter_ones().collect();
        let expected: Vec<usize> = (0..len).filter(|&i| model[i]).collect();
        assert_eq!(ones, expected, "iter_ones order/content at len {len}");
    }
}

#[test]
fn randomized_graph_compression_roundtrip() {
    for seed in 0..8u64 {
        let n = 30 + seed as usize * 13;
        let g = gnm(n, 2 * n + seed as usize * 11, 0xACE ^ seed);
        let csr = CsrGraph::from_view(&g);
        let compressed = CompressedCsrGraph::from_csr(&csr);
        assert_eq!(compressed.to_csr(), csr, "seed {seed}");
        assert_eq!(compressed.num_edges(), csr.num_edges());
        for v in csr.vertices() {
            assert_eq!(compressed.neighbors(v), csr.neighbors(v), "seed {seed}");
        }
    }
}
