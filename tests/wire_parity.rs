//! Protocol-v2 wire parity and robustness.
//!
//! Three families of cross-crate checks:
//!
//! * **round-trips** — every request/response shape survives
//!   `to_bytes`/`from_bytes` unchanged, and frames reassemble across
//!   arbitrary chunk boundaries;
//! * **hostile bytes** — randomized fuzz: truncations, single-byte
//!   mutations and pure garbage must be *rejected or reinterpreted*, never
//!   panic, for the message codec, the work-item/index formats and the
//!   frame decoder;
//! * **byte-driven parity** — a shard worker fed purely over
//!   [`Transport`] frames reproduces the whole-graph enumeration
//!   byte-identically, a served engine answers framed batches exactly like
//!   the in-process path, and `TopKComponents` pagination returns every
//!   component exactly once with parity against `components_at`.

use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::UndirectedGraph;
use kvcc_service::wire::frame::{encode_frame, FrameDecoder};
use kvcc_service::{
    call, run_shard_worker, CsrWorkItem, EngineConfig, GraphId, KvccOptions, LoopbackTransport,
    OrderingPolicy, PageCursor, QosStats, QueryRequest, QueryResponse, RankBy, RankedEntry,
    Request, RequestBody, Response, ResponseBody, SchedulingStats, ServiceEngine, ServiceError,
};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
fn mixed_graph() -> UndirectedGraph {
    let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
    for i in 5..9u32 {
        for j in (i + 1)..9 {
            edges.push((i, j));
        }
    }
    UndirectedGraph::from_edges(9, edges).unwrap()
}

/// A larger §6.4-style workload for the sharded and pagination checks.
fn collab() -> UndirectedGraph {
    collaboration_graph(&CollaborationConfig {
        num_groups: 5,
        group_size: (6, 9),
        pendant_collaborators: 10,
        ..CollaborationConfig::default()
    })
    .graph
}

fn sample_item() -> CsrWorkItem {
    let graph =
        kvcc_service::CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap();
    CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14])
}

/// Every request shape of the v2 vocabulary.
fn all_requests() -> Vec<Request> {
    let id = GraphId(3);
    let mut queries = vec![
        QueryRequest::EnumerateKvccs { graph: id, k: 4 },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: 1,
            k: 4,
        },
        QueryRequest::MaxConnectivity {
            graph: id,
            u: 0,
            v: 100,
        },
        QueryRequest::VertexConnectivityNumber { graph: id, v: 2 },
        QueryRequest::GlobalCutProbe { graph: id, k: 3 },
        QueryRequest::LocalConnectivity {
            graph: id,
            u: 0,
            v: 1,
            limit: 8,
        },
        QueryRequest::GraphStats { graph: id },
    ];
    for rank_by in RankBy::ALL {
        queries.push(QueryRequest::TopKComponents {
            graph: id,
            rank_by,
            page_size: 7,
            cursor: None,
        });
    }
    queries.push(QueryRequest::TopKComponents {
        graph: id,
        rank_by: RankBy::Density,
        page_size: 1,
        cursor: Some(
            PageCursor {
                graph: id,
                rank_by: RankBy::Density,
                offset: 4,
                num_nodes: 11,
                epoch: 3,
            }
            .to_bytes(),
        ),
    });
    let mut requests: Vec<Request> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| Request {
            request_id: i as u64,
            deadline_hint_ms: (i % 2 == 0).then_some(i as u32 * 100),
            body: RequestBody::Query(q.clone()),
        })
        .collect();
    requests.push(Request {
        request_id: u64::MAX,
        deadline_hint_ms: Some(u32::MAX),
        body: RequestBody::Batch(queries),
    });
    requests.push(Request {
        request_id: 1 << 40,
        deadline_hint_ms: None,
        body: RequestBody::WorkItem {
            k: 2,
            item: sample_item(),
        },
    });
    requests.push(Request {
        request_id: 77,
        deadline_hint_ms: None,
        body: RequestBody::Handshake {
            token: "hunter2".into(),
        },
    });
    requests
}

/// Every response shape of the v2 vocabulary.
fn all_responses() -> Vec<Response> {
    use kvcc_service::KVertexConnectedComponent as Comp;
    let errors = vec![
        ServiceError::UnknownGraph { graph: GraphId(9) },
        ServiceError::VertexOutOfRange { vertex: 42 },
        ServiceError::Enumeration("k too large".into()),
        ServiceError::InvalidCursor {
            reason: "stale".into(),
        },
        ServiceError::DeadlineExceeded,
        ServiceError::Unsupported {
            what: "queries".into(),
        },
        ServiceError::MalformedRequest {
            reason: "bad tag".into(),
        },
        ServiceError::Transport {
            reason: "peer gone".into(),
        },
        ServiceError::Overloaded,
        ServiceError::Unauthorized,
    ];
    let mut bodies = vec![
        QueryResponse::Components(vec![]),
        QueryResponse::Components(vec![
            Comp::new(vec![0, 1, 2]),
            Comp::new(vec![1_000_000, 2_000_000]),
        ]),
        QueryResponse::Connectivity(0),
        QueryResponse::Connectivity(u32::MAX),
        QueryResponse::Cut(None),
        QueryResponse::Cut(Some(vec![])),
        QueryResponse::Cut(Some(vec![7, 9, 4_000_000])),
        QueryResponse::Stats {
            num_vertices: 1_000_000,
            num_edges: 123_456_789,
            indexed: true,
            max_k: 17,
            ordering: OrderingPolicy::Bfs,
            depth_limit: Some(3),
            scheduling: SchedulingStats {
                work_items: 1_000,
                steals: u64::MAX,
                splits: 0,
                cancelled_runs: 3,
                retries: 12,
                requeues: 4,
                quarantines: 1,
                reinstatements: 1,
                local_fallbacks: 2,
                update_batches: 5,
                update_edges: 90,
                update_rebuilds: 1,
                compactions: 2,
            },
            epoch: 5,
            qos: QosStats {
                cache_hits: 12,
                cache_misses: 3,
                coalesced: 7,
                shed: 1,
                queue_depth: 4,
            },
        },
        QueryResponse::Page {
            entries: vec![
                RankedEntry {
                    k: 4,
                    internal_edges: 10,
                    component: Comp::new(vec![1, 2, 3, 4, 5]),
                },
                RankedEntry {
                    k: 1,
                    internal_edges: 1,
                    component: Comp::new(vec![8, 9]),
                },
            ],
            next_cursor: Some(
                PageCursor {
                    graph: GraphId(1),
                    rank_by: RankBy::Size,
                    offset: 2,
                    num_nodes: 40,
                    epoch: 0,
                }
                .to_bytes(),
            ),
        },
        QueryResponse::Page {
            entries: vec![],
            next_cursor: None,
        },
        QueryResponse::HandshakeOk,
    ];
    bodies.extend(errors.into_iter().map(QueryResponse::Error));
    let mut responses: Vec<Response> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| Response {
            request_id: i as u64 * 7,
            body: ResponseBody::Query(b.clone()),
        })
        .collect();
    responses.push(Response {
        request_id: 0,
        body: ResponseBody::Batch(bodies),
    });
    responses
}

#[test]
fn every_message_shape_roundtrips() {
    for request in all_requests() {
        let bytes = request.to_bytes();
        assert_eq!(Request::from_bytes(&bytes).unwrap(), request);
        assert!(Response::from_bytes(&bytes).is_err(), "kind is checked");
    }
    for response in all_responses() {
        let bytes = response.to_bytes();
        assert_eq!(Response::from_bytes(&bytes).unwrap(), response);
        assert!(Request::from_bytes(&bytes).is_err(), "kind is checked");
    }
}

#[test]
fn randomized_fuzz_never_panics() {
    let mut rng = XorShift(0xF00D_F00D);
    let requests = all_requests();
    let responses = all_responses();
    let corpora: Vec<Vec<u8>> = requests
        .iter()
        .map(Request::to_bytes)
        .chain(responses.iter().map(Response::to_bytes))
        .collect();

    // Truncations of valid buffers: every strict prefix must be rejected
    // (the formats end with an exact-consumption check, so a prefix can
    // never be a valid message).
    for buf in &corpora {
        for cut in 0..buf.len() {
            assert!(Request::from_bytes(&buf[..cut]).is_err());
            assert!(Response::from_bytes(&buf[..cut]).is_err());
        }
    }

    // Single-byte mutations: decoding may succeed (a changed id is still a
    // valid message) but must never panic, and a successful decode must
    // re-encode to a decodable buffer (no incoherent structures escape).
    for round in 0..4_000 {
        let buf = &corpora[(round % corpora.len() as u64) as usize];
        let mut mutated = buf.clone();
        let at = rng.below(mutated.len() as u64) as usize;
        mutated[at] ^= (1 + rng.below(255)) as u8;
        if let Ok(request) = Request::from_bytes(&mutated) {
            assert!(Request::from_bytes(&request.to_bytes()).is_ok());
        }
        if let Ok(response) = Response::from_bytes(&mutated) {
            assert!(Response::from_bytes(&response.to_bytes()).is_ok());
        }
    }

    // Pure garbage (with a valid-looking header so decoding reaches deep):
    // reject, never panic, for every wire format in the crate.
    for _ in 0..2_000 {
        let len = rng.below(200) as usize;
        let mut garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = Request::from_bytes(&garbage);
        let _ = Response::from_bytes(&garbage);
        let _ = CsrWorkItem::from_bytes(&garbage);
        let _ = kvcc_service::ConnectivityIndex::from_bytes(&garbage);
        let _ = PageCursor::from_bytes(&garbage);
        if garbage.len() >= 6 {
            garbage[..4].copy_from_slice(b"KRPC");
            garbage[4] = 2;
            garbage[5] %= 2;
            let _ = Request::from_bytes(&garbage);
            let _ = Response::from_bytes(&garbage);
            garbage[..4].copy_from_slice(b"KWRK");
            let _ = CsrWorkItem::from_bytes(&garbage);
            garbage[..4].copy_from_slice(b"KIDX");
            let _ = kvcc_service::ConnectivityIndex::from_bytes(&garbage);
            garbage[..4].copy_from_slice(b"KCUR");
            let _ = PageCursor::from_bytes(&garbage);
        }
    }
}

#[test]
fn frames_survive_arbitrary_chunking() {
    let mut rng = XorShift(0xBEEF);
    let payloads: Vec<Vec<u8>> = all_requests().iter().map(Request::to_bytes).collect();
    let mut stream = Vec::new();
    for p in &payloads {
        stream.extend_from_slice(&encode_frame(p).unwrap());
    }
    for round in 0..50 {
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut at = 0usize;
        while at < stream.len() {
            let chunk = 1 + rng.below(97) as usize;
            let end = (at + chunk).min(stream.len());
            decoder.push(&stream[at..end]);
            at = end;
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads, "round {round}");
        assert_eq!(decoder.pending_bytes(), 0);
    }
    // A hostile length prefix poisons the stream instead of allocating.
    let mut decoder = FrameDecoder::new();
    decoder.push(&0xFFFF_FFFFu32.to_le_bytes());
    assert!(decoder.next_frame().is_err());
}

#[test]
fn shard_workers_over_frames_reproduce_the_enumeration_byte_identically() {
    for (name, graph) in [("mixed", mixed_graph()), ("collab", collab())] {
        let engine = ServiceEngine::new(EngineConfig {
            ordering: OrderingPolicy::Hybrid,
            ..EngineConfig::default()
        });
        let id = engine.load_graph(name, &graph);
        for k in 1..=3u32 {
            // Two shard workers, each living on the far side of a loopback
            // transport: nothing crosses except length-prefixed frames.
            let (client_a, server_a) = LoopbackTransport::pair();
            let (client_b, server_b) = LoopbackTransport::pair();
            let workers: Vec<_> = [server_a, server_b]
                .into_iter()
                .map(|server| {
                    std::thread::spawn(move || {
                        run_shard_worker(&server, &KvccOptions::default()).unwrap()
                    })
                })
                .collect();
            let sharded = engine
                .enumerate_sharded(id, k, &[&client_a, &client_b])
                .unwrap();
            drop((client_a, client_b));
            let served: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(served, engine.partition_work(id, k).unwrap().len());

            // Byte-identical to the in-process engine answer: compare the
            // *encoded* responses, not just the values.
            let direct = match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }) {
                QueryResponse::Components(c) => c,
                other => panic!("expected components, got {other:?}"),
            };
            let as_response = |components| Response {
                request_id: 1,
                body: ResponseBody::Query(QueryResponse::Components(components)),
            };
            assert_eq!(
                as_response(sharded).to_bytes(),
                as_response(direct).to_bytes(),
                "{name}, k = {k}"
            );
        }
    }
}

#[test]
fn served_engine_answers_framed_batches_like_the_in_process_path() {
    let graph = mixed_graph();
    let engine = std::sync::Arc::new(ServiceEngine::new(EngineConfig::default()));
    let id = engine.load_graph("mixed", &graph);
    let queries: Vec<QueryRequest> = (0..graph.num_vertices() as u32)
        .map(|seed| QueryRequest::KvccsContaining {
            graph: id,
            seed,
            k: 2,
        })
        .chain([
            QueryRequest::GraphStats { graph: id },
            QueryRequest::MaxConnectivity {
                graph: id,
                u: 5,
                v: 8,
            },
        ])
        .collect();
    let expected = engine.execute_batch(&queries);

    let (client, server) = LoopbackTransport::pair();
    let server_engine = std::sync::Arc::clone(&engine);
    let serving = std::thread::spawn(move || server_engine.serve(&server).unwrap());
    let response = call(
        &client,
        &Request {
            request_id: 99,
            deadline_hint_ms: None,
            body: RequestBody::Batch(queries),
        },
    )
    .unwrap();
    assert_eq!(response.request_id, 99);
    assert_eq!(response.body, ResponseBody::Batch(expected));
    drop(client);
    serving.join().unwrap();
}

#[test]
fn topk_pagination_returns_every_component_exactly_once() {
    for ordering in [OrderingPolicy::Preserve, OrderingPolicy::Hybrid] {
        let graph = collab();
        let engine = ServiceEngine::new(EngineConfig {
            ordering,
            ..EngineConfig::default()
        });
        let id = engine.load_graph("collab", &graph);

        // Reference: the union of `components_at` over every level, i.e.
        // every node of the index forest, via the enumeration query path.
        let mut reference: Vec<(u32, Vec<u32>)> = Vec::new();
        let max_k = match engine.execute(&QueryRequest::GraphStats { graph: id }) {
            QueryResponse::Stats { .. } => {
                // Force the index, then read its depth.
                engine.build_index(id).unwrap();
                match engine.execute(&QueryRequest::GraphStats { graph: id }) {
                    QueryResponse::Stats { max_k, .. } => max_k,
                    other => panic!("expected stats, got {other:?}"),
                }
            }
            other => panic!("expected stats, got {other:?}"),
        };
        assert!(max_k >= 3, "collab suite has deep structure");
        for k in 1..=max_k {
            match engine.execute(&QueryRequest::EnumerateKvccs { graph: id, k }) {
                QueryResponse::Components(components) => {
                    reference.extend(components.into_iter().map(|c| (k, c.vertices().to_vec())))
                }
                other => panic!("expected components, got {other:?}"),
            }
        }
        reference.sort();

        for rank_by in RankBy::ALL {
            for page_size in [1u32, 3, 7, 10_000] {
                let mut collected: Vec<(u32, Vec<u32>)> = Vec::new();
                let mut cursor: Option<Vec<u8>> = None;
                let mut pages = 0;
                loop {
                    let response = engine.execute(&QueryRequest::TopKComponents {
                        graph: id,
                        rank_by,
                        page_size,
                        cursor: cursor.clone(),
                    });
                    let (entries, next) = match response {
                        QueryResponse::Page {
                            entries,
                            next_cursor,
                        } => (entries, next_cursor),
                        other => panic!("expected a page, got {other:?}"),
                    };
                    pages += 1;
                    assert!(
                        entries.len() <= page_size as usize,
                        "pages never exceed page_size"
                    );
                    // Within and across pages the ranking key never
                    // increases (ties allowed).
                    collected.extend(
                        entries
                            .iter()
                            .map(|e| (e.k, e.component.vertices().to_vec())),
                    );
                    for pair in entries.windows(2) {
                        let not_increasing = match rank_by {
                            RankBy::K => pair[0].k >= pair[1].k,
                            RankBy::Size => pair[0].size() >= pair[1].size(),
                            RankBy::Density => pair[0].density() >= pair[1].density() - 1e-12,
                        };
                        assert!(not_increasing, "{rank_by:?}: ranking order violated");
                    }
                    match next {
                        Some(next) => cursor = Some(next),
                        None => break,
                    }
                }
                assert_eq!(
                    pages,
                    (reference.len() as u32).div_ceil(page_size).max(1),
                    "{ordering:?}/{rank_by:?}/{page_size}: page count"
                );
                // Exactly-once coverage with parity against components_at:
                // same multiset of (k, members) pairs, no duplicates, no
                // omissions.
                collected.sort();
                assert_eq!(
                    collected, reference,
                    "{ordering:?}/{rank_by:?}/{page_size}: coverage"
                );
            }
        }
    }
}

#[test]
fn topk_pages_are_identical_across_ordering_policies() {
    // The slot ranks in external (loaded-id) space with content tie-breaks,
    // so pages — entries *and* cursors — must be byte-identical whatever
    // layout the engine stores the graph in (the PR 3 response invariant).
    let graph = collab();
    let reference_pages = |ordering: OrderingPolicy| {
        let engine = ServiceEngine::new(EngineConfig {
            ordering,
            ..EngineConfig::default()
        });
        let id = engine.load_graph("collab", &graph);
        let mut pages = Vec::new();
        for rank_by in RankBy::ALL {
            let mut cursor: Option<Vec<u8>> = None;
            loop {
                match engine.execute(&QueryRequest::TopKComponents {
                    graph: id,
                    rank_by,
                    page_size: 3,
                    cursor: cursor.take(),
                }) {
                    QueryResponse::Page {
                        entries,
                        next_cursor,
                    } => {
                        pages.push((rank_by, entries, next_cursor.clone()));
                        match next_cursor {
                            Some(next) => cursor = Some(next),
                            None => break,
                        }
                    }
                    other => panic!("expected a page, got {other:?}"),
                }
            }
        }
        pages
    };
    let preserve = reference_pages(OrderingPolicy::Preserve);
    for ordering in [
        OrderingPolicy::DegreeDescending,
        OrderingPolicy::Bfs,
        OrderingPolicy::Hybrid,
    ] {
        assert_eq!(reference_pages(ordering), preserve, "{ordering:?}");
    }
}

#[test]
fn hostile_cursors_are_rejected_with_the_stable_code() {
    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_graph("mixed", &mixed_graph());
    engine.build_index(id).unwrap();
    let page = |cursor: Option<Vec<u8>>, rank_by| {
        engine.execute(&QueryRequest::TopKComponents {
            graph: id,
            rank_by,
            page_size: 2,
            cursor,
        })
    };
    let expect_invalid = |response: QueryResponse| match response {
        QueryResponse::Error(e) => assert_eq!(e.code(), 4, "{e}"),
        other => panic!("expected an invalid-cursor error, got {other:?}"),
    };

    // A real cursor from the first page…
    let good = match page(None, RankBy::Size) {
        QueryResponse::Page {
            next_cursor: Some(c),
            ..
        } => c,
        other => panic!("expected a continued page, got {other:?}"),
    };
    // …replayed against a different ranking.
    expect_invalid(page(Some(good.clone()), RankBy::Density));
    // Truncated, mutated magic, and garbage cursors.
    expect_invalid(page(Some(good[..good.len() - 1].to_vec()), RankBy::Size));
    let mut bad_magic = good.clone();
    bad_magic[0] = b'Z';
    expect_invalid(page(Some(bad_magic), RankBy::Size));
    expect_invalid(page(Some(vec![1, 2, 3]), RankBy::Size));
    // A fingerprint from a different index (node count off by one).
    let mut stale = PageCursor::from_bytes(&good).unwrap();
    stale.num_nodes += 1;
    expect_invalid(page(Some(stale.to_bytes()), RankBy::Size));
    // An offset beyond the end.
    let mut beyond = PageCursor::from_bytes(&good).unwrap();
    beyond.offset = beyond.num_nodes + 1;
    expect_invalid(page(Some(beyond.to_bytes()), RankBy::Size));
    // Replay against a *different graph* whose index has the same node
    // count (the same graph loaded twice): the graph id in the cursor must
    // reject it — an identical fingerprint is not enough.
    let twin = engine.load_graph("mixed-twin", &mixed_graph());
    engine.build_index(twin).unwrap();
    match engine.execute(&QueryRequest::TopKComponents {
        graph: twin,
        rank_by: RankBy::Size,
        page_size: 2,
        cursor: Some(good.clone()),
    }) {
        QueryResponse::Error(e) => assert_eq!(e.code(), 4, "{e}"),
        other => panic!("expected an invalid-cursor error, got {other:?}"),
    }
    // page_size 0 is a malformed request, not a crash or an infinite page.
    match engine.execute(&QueryRequest::TopKComponents {
        graph: id,
        rank_by: RankBy::Size,
        page_size: 0,
        cursor: None,
    }) {
        QueryResponse::Error(e) => assert_eq!(e.code(), 7, "{e}"),
        other => panic!("expected a malformed-request error, got {other:?}"),
    }
}

#[test]
fn work_item_and_index_wire_formats_use_the_shared_codec_economically() {
    // The v2 varint formats must beat their fixed-width v1 equivalents on a
    // real workload — that is the point of sharing the codec.
    let planted = planted_communities(&PlantedConfig {
        num_communities: 4,
        chain_length: 2,
        community_size: (8, 10),
        background_vertices: 250,
        seed: 77,
        ..PlantedConfig::default()
    });
    let engine = ServiceEngine::new(EngineConfig::default());
    let id = engine.load_graph("planted", &planted.graph);
    let items = engine.partition_work(id, 2).unwrap();
    assert!(!items.is_empty());
    for item in &items {
        let bytes = item.to_bytes();
        assert_eq!(&CsrWorkItem::from_bytes(&bytes).unwrap(), item);
        let g = item.graph();
        let fixed_v1 = 9 // work-item header
            + 13 + 4 * (g.num_vertices() + 1) + 8 * g.num_edges() // CSR v1
            + 4 + 4 * item.to_original().len(); // id map
        assert!(
            bytes.len() < fixed_v1,
            "work item: varint {} vs fixed {fixed_v1}",
            bytes.len()
        );
    }
    let index_bytes = engine.index_bytes(id).unwrap();
    let index = kvcc_service::ConnectivityIndex::from_bytes(&index_bytes).unwrap();
    let fixed_v1: usize = 17
        + index
            .ranked_components(RankBy::Size, index.num_nodes())
            .iter()
            .map(|e| 12 + 4 * e.component.len())
            .sum::<usize>();
    assert!(
        index_bytes.len() < fixed_v1,
        "index: varint {} vs fixed {fixed_v1}",
        index_bytes.len()
    );
}
