//! Property-based tests (proptest) over random graphs: the enumerator's
//! output always verifies, matches the brute-force oracle on tiny inputs, and
//! the supporting substrates (certificate, connectivity, partition) uphold
//! their invariants.

use proptest::prelude::*;

use kvcc::certificate::sparse_certificate;
use kvcc::partition::overlap_partition;
use kvcc::verify::verify_kvccs;
use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::naive_kvccs;
use kvcc_flow::{global_vertex_connectivity, is_k_vertex_connected};
use kvcc_graph::{UndirectedGraph, VertexId};

/// Strategy: a random graph with `n` vertices and up to `max_edges` edges.
fn arbitrary_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = UndirectedGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges)
            .prop_map(move |edges| UndirectedGraph::from_edges(n, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumeration_matches_the_oracle_on_tiny_graphs(
        g in arbitrary_graph(10, 24),
        k in 1u32..=4,
    ) {
        let expected = naive_kvccs(&g, k);
        let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
        let mut got: Vec<Vec<VertexId>> =
            result.iter().map(|c| c.vertices().to_vec()).collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn enumeration_output_always_verifies(
        g in arbitrary_graph(40, 220),
        k in 2u32..=5,
    ) {
        let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
        prop_assert!(verify_kvccs(&g, &result, true).is_ok());
        // Theorem 6 bound.
        prop_assert!(result.num_components() <= g.num_vertices() / 2);
    }

    #[test]
    fn all_variants_agree_on_random_graphs(
        g in arbitrary_graph(24, 100),
        k in 2u32..=4,
    ) {
        let reference = enumerate_kvccs(&g, k, &KvccOptions::basic()).unwrap();
        let reference: Vec<_> = reference.iter().map(|c| c.vertices().to_vec()).collect();
        for variant in kvcc::AlgorithmVariant::all() {
            let r = enumerate_kvccs(&g, k, &KvccOptions::for_variant(variant)).unwrap();
            let got: Vec<_> = r.iter().map(|c| c.vertices().to_vec()).collect();
            prop_assert_eq!(&got, &reference, "variant {:?}", variant);
        }
    }

    #[test]
    fn certificate_preserves_connectivity_up_to_k(
        g in arbitrary_graph(16, 60),
        k in 1u32..=4,
    ) {
        let cert = sparse_certificate(&g, k);
        prop_assert!(cert.num_edges() <= k as usize * g.num_vertices().saturating_sub(1).max(1));
        // The certificate is k-connected exactly when the graph is.
        prop_assert_eq!(
            is_k_vertex_connected(&cert.graph, k),
            is_k_vertex_connected(&g, k)
        );
        // More precisely, connectivity is preserved up to k.
        let kg = global_vertex_connectivity(&g).min(k);
        let kc = global_vertex_connectivity(&cert.graph).min(k);
        prop_assert_eq!(kg, kc);
    }

    #[test]
    fn overlap_partition_preserves_all_non_cut_edges(
        g in arbitrary_graph(20, 80),
        cut_size in 0usize..=3,
    ) {
        // Use the lowest `cut_size` vertex ids as a (possibly non-separating)
        // "cut" and check the partition invariants of Lemma 8.
        let cut: Vec<VertexId> = (0..cut_size.min(g.num_vertices()) as VertexId).collect();
        let parts = overlap_partition(&g, &cut);
        // Every part contains the whole cut.
        for part in &parts {
            for c in &cut {
                prop_assert!(part.contains(c));
            }
        }
        // Every vertex outside the cut appears in exactly one part.
        let mut seen = vec![0usize; g.num_vertices()];
        for part in &parts {
            for &v in part {
                seen[v as usize] += 1;
            }
        }
        for (v, &count) in seen.iter().enumerate() {
            let v = v as VertexId;
            let expected = if cut.contains(&v) { parts.len() } else { 1 };
            if parts.is_empty() {
                prop_assert!(cut.contains(&v) || g.num_vertices() == cut.len());
            } else {
                prop_assert_eq!(count, expected, "vertex {}", v);
            }
        }
        // Every edge of g appears in at least one part's induced subgraph
        // unless it connects two different sides (in which case one endpoint
        // is in the cut — impossible — or the edge was a cut-crossing edge,
        // which cannot exist because removing vertices removes their edges).
        for (a, b) in g.edges() {
            let covered = parts
                .iter()
                .any(|p| p.contains(&a) && p.contains(&b));
            let touches_cut = cut.contains(&a) || cut.contains(&b);
            prop_assert!(covered || touches_cut || parts.is_empty());
        }
    }

    #[test]
    fn every_reported_component_is_k_connected_even_with_ablation(
        g in arbitrary_graph(30, 140),
        k in 2u32..=4,
    ) {
        let options = KvccOptions {
            use_sparse_certificate: false,
            order_by_distance: false,
            ..KvccOptions::default()
        };
        let result = enumerate_kvccs(&g, k, &options).unwrap();
        for comp in result.iter() {
            let sub = comp.induced_subgraph(&g);
            prop_assert!(is_k_vertex_connected(&sub.graph, k));
        }
    }
}
