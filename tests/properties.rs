//! Property-style tests over seeded random graphs: the enumerator's output
//! always verifies, matches the brute-force oracle on tiny inputs, and the
//! supporting substrates (certificate, connectivity, partition) uphold their
//! invariants.
//!
//! The original seed used `proptest`, which is unavailable in the offline
//! build environment; the same properties are checked here over deterministic
//! families of Erdős–Rényi graphs from `kvcc-datasets`, so failures are
//! trivially reproducible from the printed seed.

use kvcc::certificate::sparse_certificate;
use kvcc::partition::overlap_partition;
use kvcc::verify::verify_kvccs;
use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::naive_kvccs;
use kvcc_datasets::er::gnm;
use kvcc_flow::{global_vertex_connectivity, is_k_vertex_connected};
use kvcc_graph::{UndirectedGraph, VertexId};

/// Deterministic family of random graphs: for case `i`, an Erdős–Rényi
/// `G(n, m)` with `n` and `m` derived from the seed.
fn random_graph(case: u64, max_n: usize, max_edges: usize) -> UndirectedGraph {
    let n = 2 + (case as usize * 7 + 3) % (max_n - 1);
    let m = (case as usize * 13 + 5) % (max_edges + 1);
    gnm(n, m, 0xC0FFEE ^ case)
}

#[test]
fn enumeration_matches_the_oracle_on_tiny_graphs() {
    for case in 0..48u64 {
        let g = random_graph(case, 10, 24);
        for k in 1u32..=4 {
            let expected = naive_kvccs(&g, k);
            let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            let mut got: Vec<Vec<VertexId>> =
                result.iter().map(|c| c.vertices().to_vec()).collect();
            got.sort();
            assert_eq!(got, expected, "case {case}, k {k}");
        }
    }
}

#[test]
fn enumeration_output_always_verifies() {
    for case in 0..24u64 {
        let g = random_graph(case, 40, 220);
        for k in 2u32..=5 {
            let result = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert!(
                verify_kvccs(&g, &result, true).is_ok(),
                "case {case}, k {k}: verification failed"
            );
            // Theorem 6 bound.
            assert!(result.num_components() <= g.num_vertices() / 2);
        }
    }
}

#[test]
fn all_variants_agree_on_random_graphs() {
    for case in 0..24u64 {
        let g = random_graph(case, 24, 100);
        for k in 2u32..=4 {
            let reference = enumerate_kvccs(&g, k, &KvccOptions::basic()).unwrap();
            let reference: Vec<_> = reference.iter().map(|c| c.vertices().to_vec()).collect();
            for variant in kvcc::AlgorithmVariant::all() {
                let r = enumerate_kvccs(&g, k, &KvccOptions::for_variant(variant)).unwrap();
                let got: Vec<_> = r.iter().map(|c| c.vertices().to_vec()).collect();
                assert_eq!(got, reference, "case {case}, k {k}, variant {variant:?}");
            }
        }
    }
}

#[test]
fn certificate_preserves_connectivity_up_to_k() {
    for case in 0..24u64 {
        let g = random_graph(case, 16, 60);
        for k in 1u32..=4 {
            let cert = sparse_certificate(&g, k);
            assert!(
                cert.num_edges() <= k as usize * g.num_vertices().saturating_sub(1).max(1),
                "case {case}, k {k}"
            );
            // The certificate is k-connected exactly when the graph is.
            assert_eq!(
                is_k_vertex_connected(&cert.graph, k),
                is_k_vertex_connected(&g, k),
                "case {case}, k {k}"
            );
            // More precisely, connectivity is preserved up to k.
            let kg = global_vertex_connectivity(&g).min(k);
            let kc = global_vertex_connectivity(&cert.graph).min(k);
            assert_eq!(kg, kc, "case {case}, k {k}");
        }
    }
}

#[test]
fn overlap_partition_preserves_all_non_cut_edges() {
    for case in 0..32u64 {
        let g = random_graph(case, 20, 80);
        for cut_size in 0usize..=3 {
            // Use the lowest `cut_size` vertex ids as a (possibly
            // non-separating) "cut" and check the partition invariants of
            // Lemma 8.
            let cut: Vec<VertexId> = (0..cut_size.min(g.num_vertices()) as VertexId).collect();
            let parts = overlap_partition(&g, &cut);
            // Every part contains the whole cut.
            for part in &parts {
                for c in &cut {
                    assert!(part.contains(c), "case {case}, cut {cut:?}");
                }
            }
            // Every vertex outside the cut appears in exactly one part.
            let mut seen = vec![0usize; g.num_vertices()];
            for part in &parts {
                for &v in part {
                    seen[v as usize] += 1;
                }
            }
            for (v, &count) in seen.iter().enumerate() {
                let v = v as VertexId;
                let expected = if cut.contains(&v) { parts.len() } else { 1 };
                if parts.is_empty() {
                    assert!(cut.contains(&v) || g.num_vertices() == cut.len());
                } else {
                    assert_eq!(count, expected, "case {case}, vertex {v}");
                }
            }
            // Every edge of g appears in at least one part unless it touches
            // the cut (removed vertices take their edges with them).
            for (a, b) in g.edges() {
                let covered = parts.iter().any(|p| p.contains(&a) && p.contains(&b));
                let touches_cut = cut.contains(&a) || cut.contains(&b);
                assert!(covered || touches_cut || parts.is_empty(), "case {case}");
            }
        }
    }
}

#[test]
fn every_reported_component_is_k_connected_even_with_ablation() {
    for case in 0..16u64 {
        let g = random_graph(case, 30, 140);
        for k in 2u32..=4 {
            let options = KvccOptions {
                use_sparse_certificate: false,
                order_by_distance: false,
                ..KvccOptions::default()
            };
            let result = enumerate_kvccs(&g, k, &options).unwrap();
            for comp in result.iter() {
                let sub = comp.induced_subgraph(&g);
                assert!(
                    is_k_vertex_connected(&sub.graph, k),
                    "case {case}, k {k}: component not k-connected"
                );
            }
        }
    }
}
